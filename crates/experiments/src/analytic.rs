//! The analytic overlay: exact solver results next to the Monte-Carlo
//! estimates of the Fig. 7 latency and Table 1 crash-latency
//! experiments.
//!
//! Two families of rows:
//!
//! * **exponential** rows (`ph_order` column empty) solve the Markovian
//!   re-parameterisation ([`SanParams::exponential_baseline`]) exactly
//!   — the marking process is a CTMC as-is. The simulator run on the
//!   identical parameters must agree within its own 90 % confidence
//!   interval, cross-validating both engines.
//! * **phase-type** rows (`ph_order = K`) attack the paper's *real*
//!   Fig. 7 parameterisation — deterministic CPU stages, bi-modal
//!   uniform network delays — by hyper-Erlang expansion inside the
//!   solver (`ReachOptions::ph_order`). Deterministic stages can only
//!   be matched in the mean at any finite order (their variance error
//!   decays as `1/K`), so the headline `analytic_ms` is the standard
//!   Richardson extrapolation over the order,
//!   `(K·m_K − K'·m_{K'})/(K − K')` with `K' = K − 1`, and the raw
//!   order-K mean is kept alongside in `ph_raw_ms`. The overlay CDF
//!   comes from the order-K solve.

use std::path::PathBuf;
use std::time::Instant;

use ctsim_models::{build_model, latency_replications, SanParams};
use ctsim_solve::{
    extrapolated_mean, AnalyticRun, DedupMode, GeneratorBackend, SolveError, SolveOptions,
    SolverBackend, SpillOptions,
};
use ctsim_testbed::CrashScenario;

use crate::scale::Scale;

/// Knobs for the phase-type rows, surfaced as `repro analytic
/// --ph-order K --threads T [--n N] [--solver BACKEND]`.
#[derive(Debug, Clone)]
pub struct AnalyticOptions {
    /// Phase-type expansion order for the paper-parameter rows
    /// (`0` disables those rows entirely).
    pub ph_order: u32,
    /// Exploration worker threads (`0` = one per core), reused for the
    /// solver backend's sharded SpMV. Results are identical for every
    /// value.
    pub threads: usize,
    /// Run the overlay for exactly this process count instead of the
    /// scale's default sweep. An explicit `n` also lifts the scale's
    /// state cap to [`SanParams::recommended_max_states`], so
    /// `--n 3 --ph-order 2 --scale quick` really solves its half-
    /// million-state space instead of reporting a cap skip — this is
    /// the mode the CI scalability gate runs.
    pub n: Option<usize>,
    /// Which linear-algebra backend solves the CTMC (`repro analytic
    /// --solver gauss-seidel|jacobi|krylov`). Every backend must land
    /// on the same means — the CI `solver-backends` matrix gates their
    /// agreement to ≤ 1e-6 relative.
    pub backend: SolverBackend,
    /// Which generator representation the solve iterates on (`repro
    /// analytic --generator csr|kron`). Both must land on the same
    /// means — the CI `generator-agreement` job gates them to ≤ 1e-6
    /// relative.
    pub generator: GeneratorBackend,
    /// RAM budget (bytes) for the exploration's and solve's bulk
    /// arrays — the transition arena, the packed states, the CSR
    /// entries, and (under [`DedupMode::Auto`]) the intern table's
    /// estimated footprint; beyond it cold segments page to a temp
    /// file (`repro analytic --spill-budget 512M`). `None` keeps
    /// everything resident. Results are byte-identical either way.
    pub spill_budget: Option<usize>,
    /// How exploration deduplicates states when a spill budget is set
    /// (`repro analytic --dedup auto|resident|external`): the resident
    /// sharded intern table, or external-memory BFS with delayed
    /// duplicate detection. Ignored without `--spill-budget`. Results
    /// are byte-identical across modes.
    pub dedup: DedupMode,
    /// Write a chrome://tracing (`trace_event`) file of the run here
    /// (`repro analytic --trace out.json`). Setting this turns the
    /// [`ctsim_obs`] telemetry on for the duration of the run; load the
    /// file in `chrome://tracing` or Perfetto.
    pub trace: Option<PathBuf>,
    /// Write the [`ctsim_obs::metrics_json`] document (counters,
    /// gauges, residual traces, histograms) here (`repro analytic
    /// --metrics out.json`). Also turns telemetry on.
    pub metrics: Option<PathBuf>,
    /// Opt-in solver fallback chains (`repro analytic --fallback`):
    /// on a recoverable backend failure the solve walks
    /// [`SolverBackend::fallback_after`] instead of failing; the
    /// backend that actually produced each mean is recorded in
    /// [`AnalyticOutcome::solved_by`](ctsim_solve::AnalyticOutcome).
    pub fallback: bool,
}

impl Default for AnalyticOptions {
    fn default() -> Self {
        Self {
            ph_order: 4,
            threads: 0,
            n: None,
            backend: SolverBackend::default(),
            generator: GeneratorBackend::default(),
            spill_budget: None,
            dedup: DedupMode::default(),
            trace: None,
            metrics: None,
            fallback: false,
        }
    }
}

/// One analytic-vs-simulation comparison.
#[derive(Debug, Clone)]
pub struct AnalyticRow {
    /// Crash scenario (Table 1 axis).
    pub scenario: CrashScenario,
    /// Number of processes (Fig. 7 axis).
    pub n: usize,
    /// Phase-type order of the solve (`None` for the exponential rows).
    pub ph_order: Option<u32>,
    /// Headline analytic mean latency (ms): exact for exponential
    /// rows, order-extrapolated for phase-type rows.
    pub analytic_ms: Option<f64>,
    /// Raw order-K phase-type mean (ms), before extrapolation.
    pub ph_raw_ms: Option<f64>,
    /// Wall-clock (ms) of the linear-algebra *solve* phase — the
    /// `Q_TT τ = -1` mean solves (both orders for extrapolated rows),
    /// excluding exploration and the CDF grid. This is what
    /// `--solver` trades off; 0 when the row was skipped.
    pub solve_ms: f64,
    /// Which backend produced the analytic columns.
    pub backend: SolverBackend,
    /// Which generator representation the solve iterated on.
    pub generator: GeneratorBackend,
    /// Tangible states of the underlying CTMC (0 when skipped).
    pub states: usize,
    /// Analytic latency CDF points `(t_ms, P(latency ≤ t))`.
    pub cdf: Vec<(f64, f64)>,
    /// Simulated mean latency (ms) on the same parameters.
    pub sim_ms: f64,
    /// 90 % CI half-width of the simulated mean.
    pub sim_ci90: f64,
    /// Phase-type rows only: simulated mean latency (ms) of the
    /// **PH-substituted** model ([`SanParams::ph_substituted`]) — the
    /// exact stochastic model the solver expanded, so [`Self::ph_raw_ms`]
    /// must agree with it regardless of how far the phase-type
    /// *approximation* sits from the paper's parameters.
    pub ph_sim_ms: Option<f64>,
    /// 90 % CI half-width of [`Self::ph_sim_ms`].
    pub ph_sim_ci90: Option<f64>,
    /// Why the analytic solve was skipped, if it was.
    pub skipped: Option<String>,
}

impl AnalyticRow {
    /// Whether the headline analytic mean and the simulator agree
    /// within the simulator's 90 % confidence interval, on the *target*
    /// parameters. For phase-type rows at larger `n` this measures the
    /// phase-type approximation quality, which is limited by the
    /// support-edge bias (no finite PH reproduces the hard minimum of
    /// the paper's delay mixtures) — see [`Self::engine_agrees`] for
    /// the regression-gateable comparison.
    pub fn agrees(&self) -> bool {
        self.analytic_ms
            .is_some_and(|a| (a - self.sim_ms).abs() <= self.sim_ci90)
    }

    /// Engine-vs-engine agreement on the **identical** stochastic
    /// model: exponential rows compare the exact solve against the
    /// simulation directly (same model already), phase-type rows
    /// compare the raw order-K mean against the simulation of the
    /// PH-substituted parameters. A `false` here means one of the two
    /// engines is wrong — this is the column CI gates on.
    pub fn engine_agrees(&self) -> bool {
        match (self.ph_raw_ms, self.ph_sim_ms, self.ph_sim_ci90) {
            (Some(raw), Some(sim), Some(ci)) => (raw - sim).abs() <= ci,
            _ => self.agrees(),
        }
    }
}

/// The analytic overlay experiment.
#[derive(Debug, Clone)]
pub struct Analytic {
    /// Rows grouped by scenario, then n ascending; phase-type rows
    /// follow the exponential rows.
    pub rows: Vec<AnalyticRow>,
}

/// Process counts per scale. `n = 2` is the smallest non-degenerate
/// consensus (a 20-state CTMC); `n = 3` is the paper's smallest
/// simulated size (≈ 10⁵ states without crashes) and is reserved for
/// the non-quick scales.
fn analytic_ns(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Quick => &[2],
        _ => &[2, 3],
    }
}

/// Process counts for the phase-type rows. Expansion multiplies the
/// state space (n = 3 passes 5 × 10⁵ states at order 2 already — see
/// the `ctsim-solve` crate docs), so n = 3 is Full-scale territory and
/// hits the state cap at higher orders, reporting a skip.
fn ph_ns(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Full => &[2, 3],
        _ => &[2],
    }
}

/// Replications per comparison point. Agreement is asserted against the
/// *simulator's* 90 % CI, so the campaign must be large enough for that
/// interval to be a few per mille of the mean — more than the figure
/// campaigns need.
fn analytic_reps(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Default => 4_000,
        Scale::Full => 10_000,
    }
}

fn max_states(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200_000,
        _ => 1_000_000,
    }
}

/// Solves the first-passage mean for the given parameters at the given
/// solve options; returns `(mean, states, cdf, solve_ms)` where
/// `solve_ms` is the wall-clock of the mean solve alone (no
/// exploration, no CDF grid).
type SolveOutcome = Result<(f64, usize, Vec<(f64, f64)>, f64), SolveError>;

/// Largest state space for which the overlay CDF is evaluated. Each
/// CDF point is a full uniformization sweep — on a half-million-state
/// n = 3 expansion the seven-point grid would dwarf the mean solve the
/// row is actually about — so huge spaces report the mean (and the
/// agreement verdict) with an empty CDF series.
const CDF_MAX_STATES: usize = 200_000;

fn solve_mean_and_cdf(params: &SanParams, opts: &SolveOptions, want_cdf: bool) -> SolveOutcome {
    let model = build_model(params);
    let decided: Vec<_> = (0..params.n)
        .map(|i| model.place(&format!("decided_{i}")).expect("built model"))
        .collect();
    let run = AnalyticRun::first_passage_with(&model, opts, move |m| {
        decided.iter().any(|&d| m.get(d) > 0)
    })?;
    let solve_start = Instant::now();
    let mean = run.mean(&opts.iter)?;
    let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
    let cdf = if want_cdf && mean.states <= CDF_MAX_STATES {
        cdf_grid(mean.mean_ms)
            .into_iter()
            .map(|t| run.cdf(t, &opts.transient).map(|p| (t, p)))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        Vec::new()
    };
    Ok((mean.mean_ms, mean.states, cdf, solve_ms))
}

fn skippable(e: &SolveError) -> bool {
    matches!(
        e,
        SolveError::StateSpaceTooLarge { .. } | SolveError::NonMarkovian { .. }
    )
}

/// Runs the overlay with default phase-type options (order 4, all
/// cores).
///
/// # Panics
/// On a non-skippable solver error — the default options are known
/// feasible, so this wrapper keeps the infallible signature the figure
/// pipeline uses. Fallible callers (the `repro` CLI) use [`run_with`].
pub fn run(scale: Scale, seed: u64) -> Analytic {
    run_with(scale, seed, &AnalyticOptions::default()).expect("default analytic overlay solves")
}

/// Runs the overlay: every scenario × n that is both feasible for the
/// solver (state cap by scale) and meaningful for the scenario (crashes
/// need `n ≥ 3` to keep a correct majority), then the phase-type rows
/// on the paper's real parameters. [`AnalyticOptions::n`] replaces the
/// scale's n sweep with one explicit process count.
///
/// When [`AnalyticOptions::trace`] or [`AnalyticOptions::metrics`] is
/// set, telemetry is enabled for the run, the requested files are
/// written afterwards, and the human-readable run summary goes to
/// stderr.
///
/// # Errors
/// Any non-skippable [`SolveError`] — including
/// [`SolveError::SpillFailed`] with its attempt trace when a disk-spill
/// operation exhausts its retry budget. State-cap and non-Markovian
/// skips stay rows with [`AnalyticRow::skipped`] set, as before.
pub fn run_with(scale: Scale, seed: u64, ph: &AnalyticOptions) -> Result<Analytic, SolveError> {
    let telemetry = ph.trace.is_some() || ph.metrics.is_some();
    if telemetry {
        ctsim_obs::enable();
    }
    let result = run_inner(scale, seed, ph);
    if telemetry {
        if let Some(path) = &ph.trace {
            std::fs::write(path, ctsim_obs::chrome_trace_json())
                .unwrap_or_else(|e| panic!("writing trace {}: {e}", path.display()));
        }
        if let Some(path) = &ph.metrics {
            std::fs::write(path, ctsim_obs::metrics_json())
                .unwrap_or_else(|e| panic!("writing metrics {}: {e}", path.display()));
        }
        eprintln!("{}", ctsim_obs::summary().trim_end());
        ctsim_obs::disable();
    }
    result
}

fn run_inner(scale: Scale, seed: u64, ph: &AnalyticOptions) -> Result<Analytic, SolveError> {
    let _run_span = ctsim_obs::span("experiment", "analytic_overlay")
        .arg("ph_order", ph.ph_order)
        .arg("backend", ph.backend.to_string())
        .arg("seed", seed);
    let exp_ns: Vec<usize> = match ph.n {
        Some(n) => vec![n],
        None => analytic_ns(scale).to_vec(),
    };
    let phase_ns: Vec<usize> = match ph.n {
        Some(n) => vec![n],
        None => ph_ns(scale).to_vec(),
    };
    let mut rows = Vec::new();
    for scenario in [
        CrashScenario::None,
        CrashScenario::Coordinator,
        CrashScenario::Participant,
    ] {
        for &n in &exp_ns {
            if scenario.crashed_index().is_some() && n < 3 {
                continue;
            }
            let mut params = SanParams::exponential_baseline(n);
            if let Some(idx) = scenario.crashed_index() {
                params = params.with_crash(idx);
            }
            let reps = latency_replications(&params, analytic_reps(scale), seed, 10_000.0);
            let mut opts = SolveOptions::ph_with_backend(0, ph.threads, ph.backend);
            opts.generator = ph.generator;
            opts.iter.fallback = ph.fallback;
            opts.reach.max_states = if ph.n.is_some() {
                params.recommended_max_states(1)
            } else {
                max_states(scale)
            };
            opts.reach.spill = ph
                .spill_budget
                .map(|b| SpillOptions::with_budget(b).dedup(ph.dedup));
            let row = match solve_mean_and_cdf(&params, &opts, true) {
                Ok((mean, states, cdf, solve_ms)) => AnalyticRow {
                    scenario,
                    n,
                    ph_order: None,
                    analytic_ms: Some(mean),
                    ph_raw_ms: None,
                    solve_ms,
                    backend: ph.backend,
                    generator: ph.generator,
                    states,
                    cdf,
                    sim_ms: reps.mean(),
                    sim_ci90: reps.ci90(),
                    ph_sim_ms: None,
                    ph_sim_ci90: None,
                    skipped: None,
                },
                Err(ref e) if skippable(e) => AnalyticRow {
                    scenario,
                    n,
                    ph_order: None,
                    analytic_ms: None,
                    ph_raw_ms: None,
                    solve_ms: 0.0,
                    backend: ph.backend,
                    generator: ph.generator,
                    states: 0,
                    cdf: Vec::new(),
                    sim_ms: reps.mean(),
                    sim_ci90: reps.ci90(),
                    ph_sim_ms: None,
                    ph_sim_ci90: None,
                    skipped: Some(e.to_string()),
                },
                Err(e) => return Err(e),
            };
            rows.push(row);
        }
    }
    // Phase-type rows: the paper's real class-1 parameters.
    if ph.ph_order >= 1 {
        for &n in &phase_ns {
            rows.push(ph_row(scale, seed, n, ph)?);
        }
    }
    Ok(Analytic { rows })
}

/// One phase-type row: raw solve at order K, extrapolation against
/// order K−1, simulation on the identical (real) parameters.
fn ph_row(
    scale: Scale,
    seed: u64,
    n: usize,
    ph: &AnalyticOptions,
) -> Result<AnalyticRow, SolveError> {
    let params = SanParams::paper_baseline(n);
    let reps = latency_replications(&params, analytic_reps(scale), seed, 10_000.0);
    let k = ph.ph_order;
    let mut opts = SolveOptions::ph_with_backend(k, ph.threads, ph.backend);
    opts.generator = ph.generator;
    opts.iter.fallback = ph.fallback;
    opts.reach.max_states = if ph.n.is_some() {
        params.recommended_max_states(k)
    } else {
        max_states(scale)
    };
    opts.reach.spill = ph
        .spill_budget
        .map(|b| SpillOptions::with_budget(b).dedup(ph.dedup));
    let solved = solve_mean_and_cdf(&params, &opts, true).and_then(|(mk, states, cdf, t_k)| {
        let (mean, solve_ms) = if k >= 2 {
            // Richardson extrapolation over the order: the dominant
            // error of the Erlang(K) stand-ins for deterministic
            // stages is ∝ 1/K (see `ctsim_solve::extrapolated_mean`).
            let mut prev = SolveOptions::ph_with_backend(k - 1, ph.threads, ph.backend);
            prev.generator = ph.generator;
            prev.iter.fallback = ph.fallback;
            prev.reach.max_states = opts.reach.max_states;
            prev.reach.spill = opts.reach.spill.clone();
            let (mk1, _, _, t_k1) = solve_mean_and_cdf(&params, &prev, false)?;
            let mean = extrapolated_mean(&[(k - 1, mk1), (k, mk)]).expect("two order points");
            (mean, t_k + t_k1)
        } else {
            (mk, t_k)
        };
        Ok((mean, mk, states, cdf, solve_ms))
    });
    Ok(match solved {
        Ok((mean, raw, states, cdf, solve_ms)) => {
            // Engine cross-validation: simulate the PH-substituted
            // model — exactly the expanded CTMC just solved — and
            // require the raw order-K mean inside its 90 % CI. A
            // decorrelated seed keeps the two campaigns independent.
            let ph_reps = latency_replications(
                &params.ph_substituted(k),
                analytic_reps(scale),
                seed ^ 0x70AD_5EED,
                10_000.0,
            );
            AnalyticRow {
                scenario: CrashScenario::None,
                n,
                ph_order: Some(k),
                analytic_ms: Some(mean),
                ph_raw_ms: Some(raw),
                solve_ms,
                backend: ph.backend,
                generator: ph.generator,
                states,
                cdf,
                sim_ms: reps.mean(),
                sim_ci90: reps.ci90(),
                ph_sim_ms: Some(ph_reps.mean()),
                ph_sim_ci90: Some(ph_reps.ci90()),
                skipped: None,
            }
        }
        Err(ref e) if skippable(e) => AnalyticRow {
            scenario: CrashScenario::None,
            n,
            ph_order: Some(k),
            analytic_ms: None,
            ph_raw_ms: None,
            solve_ms: 0.0,
            backend: ph.backend,
            generator: ph.generator,
            states: 0,
            cdf: Vec::new(),
            sim_ms: reps.mean(),
            sim_ci90: reps.ci90(),
            ph_sim_ms: None,
            ph_sim_ci90: None,
            skipped: Some(e.to_string()),
        },
        Err(e) => return Err(e),
    })
}

/// CDF evaluation grid around a mean latency.
fn cdf_grid(mean_ms: f64) -> Vec<f64> {
    [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|&f| f * mean_ms)
        .collect()
}

impl Analytic {
    /// Finds an exponential-model row.
    pub fn row(&self, scenario: CrashScenario, n: usize) -> Option<&AnalyticRow> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.n == n && r.ph_order.is_none())
    }

    /// Finds a phase-type row.
    pub fn ph_row(&self, n: usize) -> Option<&AnalyticRow> {
        self.rows.iter().find(|r| r.n == n && r.ph_order.is_some())
    }

    /// Paper-style rendering of the overlay.
    pub fn render(&self) -> String {
        fn name(s: CrashScenario) -> &'static str {
            match s {
                CrashScenario::None => "no crash          ",
                CrashScenario::Coordinator => "coordinator crash ",
                CrashScenario::Participant => "participant crash ",
            }
        }
        let mut s = String::new();
        let backend = self
            .rows
            .first()
            .map_or_else(|| SolverBackend::default().name(), |r| r.backend.name());
        let generator = self.rows.first().map_or_else(
            || GeneratorBackend::default().name(),
            |r| r.generator.name(),
        );
        s.push_str(&format!(
            "Analytic overlay — exact solve vs simulation (ms), solver backend: {backend}, generator: {generator}\n"
        ));
        s.push_str(
            "scenario           |  n | model | states | analytic | solve_ms |     sim |    ci90 | agree | engine\n",
        );
        for r in &self.rows {
            let model = match r.ph_order {
                None => "  exp".to_string(),
                Some(k) => format!(" ph-{k}"),
            };
            let verdict = |ok: bool| {
                if r.skipped.is_some() {
                    "skip"
                } else if ok {
                    "yes"
                } else {
                    "NO"
                }
            };
            s.push_str(&format!(
                "{} |{:>3} | {} |{:>7} |{} |{:>9.3} |{} |{:>8.4} | {:<5} | {}\n",
                name(r.scenario),
                r.n,
                model,
                r.states,
                r.analytic_ms.map_or("       —".into(), crate::cell),
                r.solve_ms,
                crate::cell(r.sim_ms),
                r.sim_ci90,
                verdict(r.agrees()),
                verdict(r.engine_agrees()),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_overlay_agrees_within_ci() {
        let a = run(Scale::Quick, 11);
        assert_eq!(
            a.rows.len(),
            2,
            "quick scale: exponential n = 2 plus phase-type n = 2"
        );
        let r = a.row(CrashScenario::None, 2).unwrap();
        let exact = r.analytic_ms.expect("n = 2 must solve");
        assert!(r.states > 2, "states {}", r.states);
        assert!(
            r.agrees(),
            "solver {exact} vs sim {} ± {}",
            r.sim_ms,
            r.sim_ci90
        );
        // The CDF is monotone and reaches well past the median by 3×mean.
        let cdf = &r.cdf;
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
        assert!(cdf.last().unwrap().1 > 0.9, "cdf {:?}", cdf.last());
        let rendered = a.render();
        assert!(rendered.contains("agree"));
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn n_override_restricts_rows_and_solves() {
        let opts = AnalyticOptions {
            ph_order: 2,
            threads: 1,
            n: Some(2),
            ..AnalyticOptions::default()
        };
        let a = run_with(Scale::Quick, 11, &opts).unwrap();
        assert!(a.rows.iter().all(|r| r.n == 2), "only the overridden n");
        // Crash scenarios need n ≥ 3, so: one exponential + one
        // phase-type row, both actually solved (no cap skips).
        assert_eq!(a.rows.len(), 2);
        assert!(a.rows.iter().all(|r| r.skipped.is_none()));
        assert!(a.rows.iter().all(|r| r.analytic_ms.is_some()));
        // Both engines must agree on the identical stochastic model —
        // the CI-gated column.
        assert!(a.rows.iter().all(|r| r.engine_agrees()));
    }

    /// Every solver backend reproduces the same overlay means: the
    /// in-process mirror of the CI `solver-backends` agreement matrix,
    /// gated at the same 1e-6 relative budget.
    #[test]
    fn backends_agree_on_the_overlay_means() {
        let solve = |backend: SolverBackend| {
            let opts = AnalyticOptions {
                ph_order: 3,
                threads: 2,
                n: Some(2),
                backend,
                ..AnalyticOptions::default()
            };
            run_with(Scale::Quick, 11, &opts).unwrap()
        };
        let reference = solve(SolverBackend::GaussSeidel);
        for backend in [SolverBackend::Jacobi, SolverBackend::Krylov] {
            let a = solve(backend);
            assert_eq!(a.rows.len(), reference.rows.len());
            for (r, b) in reference.rows.iter().zip(&a.rows) {
                let (rm, bm) = (r.analytic_ms.unwrap(), b.analytic_ms.unwrap());
                assert!(
                    (rm - bm).abs() <= 1e-6 * rm.abs(),
                    "{backend}: {bm} vs gauss-seidel {rm}"
                );
                assert_eq!(b.backend, backend);
                assert!(b.engine_agrees(), "{backend}");
            }
        }
    }

    /// The matrix-free Kronecker generator reproduces the CSR overlay
    /// means exactly: the in-process mirror of the CI
    /// `generator-agreement` job, gated at the same 1e-6 relative
    /// budget.
    #[test]
    fn generators_agree_on_the_overlay_means() {
        let solve = |generator: GeneratorBackend| {
            let opts = AnalyticOptions {
                ph_order: 3,
                threads: 2,
                n: Some(2),
                generator,
                ..AnalyticOptions::default()
            };
            run_with(Scale::Quick, 11, &opts).unwrap()
        };
        let reference = solve(GeneratorBackend::Csr);
        let a = solve(GeneratorBackend::Kron);
        assert_eq!(a.rows.len(), reference.rows.len());
        for (r, b) in reference.rows.iter().zip(&a.rows) {
            let (rm, bm) = (r.analytic_ms.unwrap(), b.analytic_ms.unwrap());
            assert!((rm - bm).abs() <= 1e-6 * rm.abs(), "kron: {bm} vs csr {rm}");
            assert_eq!(b.generator, GeneratorBackend::Kron);
            assert!(b.engine_agrees(), "kron n = {}", b.n);
        }
        assert!(a.render().contains("generator: kron"));
    }

    #[test]
    fn quick_overlay_phase_type_row_agrees_on_real_parameters() {
        let a = run(Scale::Quick, 11);
        let r = a.ph_row(2).expect("phase-type row present");
        assert_eq!(r.ph_order, Some(4));
        let headline = r.analytic_ms.expect("order-4 n = 2 must solve");
        let raw = r.ph_raw_ms.expect("raw mean recorded");
        assert!(
            r.agrees(),
            "extrapolated {headline} vs sim {} ± {}",
            r.sim_ms,
            r.sim_ci90
        );
        // The raw order-4 mean underestimates (Erlang stand-ins have
        // too much variance); extrapolation must move toward the sim.
        assert!(raw < headline, "raw {raw} vs extrapolated {headline}");
        assert!(!r.cdf.is_empty(), "overlay CDF present");
        // And the raw mean must match the simulation of the identical
        // PH-substituted model: the engine-vs-engine gate.
        let ph_sim = r.ph_sim_ms.expect("ph-model campaign ran");
        let ph_ci = r.ph_sim_ci90.expect("ph-model campaign ran");
        assert!(
            r.engine_agrees(),
            "raw {raw} vs ph-model sim {ph_sim} ± {ph_ci}"
        );
    }
}
