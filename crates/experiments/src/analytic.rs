//! The analytic overlay: exact solver results next to the Monte-Carlo
//! estimates of the Fig. 7 latency and Table 1 crash-latency
//! experiments.
//!
//! The paper's parameterisation mixes deterministic CPU stages with
//! bimodal network delays, so its figures can only be simulated. Under
//! the exponential re-parameterisation
//! ([`SanParams::exponential_baseline`]) the same SAN has an underlying
//! CTMC, and `ctsim-solve` computes the consensus-latency distribution
//! *exactly*: the mean from `Q_TT τ = -1` and CDF points by
//! uniformization. Each row pairs that solution with a replicated
//! simulation of the identical model — the simulator must agree with
//! the solver within its own 90 % confidence interval, cross-validating
//! both engines (and catching regressions in either).

use ctsim_models::{build_model, latency_replications, SanParams};
use ctsim_solve::{AnalyticRun, IterOptions, ReachOptions, SolveError, TransientOptions};
use ctsim_testbed::CrashScenario;

use crate::scale::Scale;

/// One analytic-vs-simulation comparison.
#[derive(Debug, Clone)]
pub struct AnalyticRow {
    /// Crash scenario (Table 1 axis).
    pub scenario: CrashScenario,
    /// Number of processes (Fig. 7 axis).
    pub n: usize,
    /// Exact mean latency (ms), when the solve succeeded.
    pub analytic_ms: Option<f64>,
    /// Tangible states of the underlying CTMC (0 when skipped).
    pub states: usize,
    /// Analytic latency CDF points `(t_ms, P(latency ≤ t))`.
    pub cdf: Vec<(f64, f64)>,
    /// Simulated mean latency (ms) on the same parameters.
    pub sim_ms: f64,
    /// 90 % CI half-width of the simulated mean.
    pub sim_ci90: f64,
    /// Why the analytic solve was skipped, if it was.
    pub skipped: Option<String>,
}

impl AnalyticRow {
    /// Whether the solver and the simulator agree within the
    /// simulator's 90 % confidence interval.
    pub fn agrees(&self) -> bool {
        self.analytic_ms
            .is_some_and(|a| (a - self.sim_ms).abs() <= self.sim_ci90)
    }
}

/// The analytic overlay experiment.
#[derive(Debug, Clone)]
pub struct Analytic {
    /// Rows grouped by scenario, then n ascending.
    pub rows: Vec<AnalyticRow>,
}

/// Process counts per scale. `n = 2` is the smallest non-degenerate
/// consensus (a 20-state CTMC); `n = 3` is the paper's smallest
/// simulated size (≈ 10⁵ states without crashes) and is reserved for
/// the non-quick scales.
fn analytic_ns(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Quick => &[2],
        _ => &[2, 3],
    }
}

/// Replications per comparison point. Agreement is asserted against the
/// *simulator's* 90 % CI, so the campaign must be large enough for that
/// interval to be a few per mille of the mean — more than the figure
/// campaigns need.
fn analytic_reps(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Default => 4_000,
        Scale::Full => 10_000,
    }
}

/// Runs the overlay: every scenario × n that is both feasible for the
/// solver (state cap by scale) and meaningful for the scenario (crashes
/// need `n ≥ 3` to keep a correct majority).
pub fn run(scale: Scale, seed: u64) -> Analytic {
    let max_states = match scale {
        Scale::Quick => 100_000,
        _ => 1_000_000,
    };
    let mut rows = Vec::new();
    for scenario in [
        CrashScenario::None,
        CrashScenario::Coordinator,
        CrashScenario::Participant,
    ] {
        for &n in analytic_ns(scale) {
            if scenario.crashed_index().is_some() && n < 3 {
                continue;
            }
            let mut params = SanParams::exponential_baseline(n);
            if let Some(idx) = scenario.crashed_index() {
                params = params.with_crash(idx);
            }
            let reps = latency_replications(&params, analytic_reps(scale), seed, 10_000.0);
            let opts = ReachOptions {
                max_states,
                ..ReachOptions::default()
            };
            let model = build_model(&params);
            let decided: Vec<_> = (0..n)
                .map(|i| model.place(&format!("decided_{i}")).expect("built model"))
                .collect();
            let row = match AnalyticRun::first_passage(&model, &opts, move |m| {
                decided.iter().any(|&d| m.get(d) > 0)
            })
            .and_then(|run| {
                let mean = run.mean(&IterOptions::default())?;
                let topts = TransientOptions::default();
                let cdf = cdf_grid(mean.mean_ms)
                    .into_iter()
                    .map(|t| run.cdf(t, &topts).map(|p| (t, p)))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((mean, cdf))
            }) {
                Ok((mean, cdf)) => AnalyticRow {
                    scenario,
                    n,
                    analytic_ms: Some(mean.mean_ms),
                    states: mean.states,
                    cdf,
                    sim_ms: reps.mean(),
                    sim_ci90: reps.ci90(),
                    skipped: None,
                },
                Err(
                    e @ (SolveError::StateSpaceTooLarge { .. } | SolveError::NonMarkovian { .. }),
                ) => AnalyticRow {
                    scenario,
                    n,
                    analytic_ms: None,
                    states: 0,
                    cdf: Vec::new(),
                    sim_ms: reps.mean(),
                    sim_ci90: reps.ci90(),
                    skipped: Some(e.to_string()),
                },
                Err(e) => panic!("analytic solve failed for n={n} {scenario:?}: {e}"),
            };
            rows.push(row);
        }
    }
    Analytic { rows }
}

/// CDF evaluation grid around a mean latency.
fn cdf_grid(mean_ms: f64) -> Vec<f64> {
    [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|&f| f * mean_ms)
        .collect()
}

impl Analytic {
    /// Finds a row.
    pub fn row(&self, scenario: CrashScenario, n: usize) -> Option<&AnalyticRow> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.n == n)
    }

    /// Paper-style rendering of the overlay.
    pub fn render(&self) -> String {
        fn name(s: CrashScenario) -> &'static str {
            match s {
                CrashScenario::None => "no crash          ",
                CrashScenario::Coordinator => "coordinator crash ",
                CrashScenario::Participant => "participant crash ",
            }
        }
        let mut s = String::new();
        s.push_str("Analytic overlay — exponential model: exact solve vs simulation (ms)\n");
        s.push_str("scenario           |  n |  states | analytic |     sim |    ci90 | agree\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{} |{:>3} |{:>8} |{} |{} |{:>8.4} | {}\n",
                name(r.scenario),
                r.n,
                r.states,
                r.analytic_ms.map_or("       —".into(), crate::cell),
                crate::cell(r.sim_ms),
                r.sim_ci90,
                if r.skipped.is_some() {
                    "skip"
                } else if r.agrees() {
                    "yes"
                } else {
                    "NO"
                },
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_overlay_agrees_within_ci() {
        let a = run(Scale::Quick, 11);
        assert_eq!(a.rows.len(), 1, "quick scale solves n = 2 only");
        let r = a.row(CrashScenario::None, 2).unwrap();
        let exact = r.analytic_ms.expect("n = 2 must solve");
        assert!(r.states > 2, "states {}", r.states);
        assert!(
            r.agrees(),
            "solver {exact} vs sim {} ± {}",
            r.sim_ms,
            r.sim_ci90
        );
        // The CDF is monotone and reaches well past the median by 3×mean.
        let cdf = &r.cdf;
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
        assert!(cdf.last().unwrap().1 > 0.9, "cdf {:?}", cdf.last());
        let rendered = a.render();
        assert!(rendered.contains("agree"));
        assert!(rendered.contains("yes"));
    }
}
