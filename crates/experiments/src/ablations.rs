//! Ablations of the modelling choices DESIGN.md calls out — each one
//! isolates a mechanism the reproduction depends on and shows what the
//! results would look like without it.
//!
//! 1. **Bimodal vs. single-point network delay** (SAN): replacing the
//!    fitted delay mixture with a deterministic delay of equal mean
//!    narrows the latency distribution — the tail mass of Fig. 6 is
//!    what widens Fig. 7's CDFs.
//! 2. **Broadcast-as-one-message vs. sequential unicasts** (SAN): the
//!    paper's shortcut hides the n = 3 participant-crash anomaly of
//!    Table 1; the unicast variant shrinks the spurious benefit.
//! 3. **Handler-work stage** (SAN): dropping `t_work` collapses the
//!    class-1 latency far below the measurement — per-message CPU cost,
//!    not wire time, dominates the real system.
//! 4. **Nagle batching of heartbeats** (testbed): enabling delayed-ack
//!    batching stretches heartbeat gaps to ~40 ms and wrecks the FD
//!    QoS at timeouts below that — evidence the measured framework ran
//!    with `TCP_NODELAY`.

use ctsim_models::latency_replications;
use ctsim_netsim::NetParams;
use ctsim_stoch::Dist;
use ctsim_testbed::{run_campaign, TestbedConfig};

use crate::fig6::Fig6;
use crate::scale::Scale;

/// One ablation row: the mechanism on vs. off, with the observable it
/// changes.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// What was ablated.
    pub name: &'static str,
    /// The observable with the mechanism as modelled.
    pub with: f64,
    /// The observable with the mechanism removed/ablated.
    pub without: f64,
    /// What the observable is.
    pub metric: &'static str,
}

/// The ablation suite results.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// All rows.
    pub rows: Vec<AblationRow>,
}

/// Runs the four ablations.
pub fn run(scale: Scale, seed: u64, fig6: &Fig6) -> Ablations {
    let reps = scale.san_reps();
    let mut rows = Vec::new();

    // 1. Bimodal vs deterministic-equal-mean network delay: compare the
    //    latency spread (q90 - q10) of the simulated CDF for n = 3.
    {
        let base = fig6.san_params(3, 0.025);
        let mut det = base.clone();
        det.net_unicast = Dist::Det(base.net_unicast.mean());
        det.net_broadcast = Dist::Det(base.net_broadcast.mean());
        let spread = |p| {
            let r = latency_replications(p, reps, seed, 1e4);
            let e = ctsim_stoch::Ecdf::new(r.samples);
            e.quantile(0.9) - e.quantile(0.1)
        };
        rows.push(AblationRow {
            name: "bimodal network delay (vs deterministic mean)",
            with: spread(&base),
            without: spread(&det),
            metric: "latency q90-q10 spread (ms), SAN n=3",
        });
    }

    // 2. Broadcast-as-one-message vs sequential unicasts: the
    //    participant-crash benefit at n = 3.
    {
        let base = fig6.san_params(3, 0.025);
        let mut uni = base.clone();
        uni.broadcast_as_unicasts = true;
        let benefit = |p: &ctsim_models::SanParams| {
            let none = latency_replications(p, reps, seed, 1e4).mean();
            let crash = latency_replications(&p.clone().with_crash(1), reps, seed, 1e4).mean();
            none - crash
        };
        rows.push(AblationRow {
            name: "single broadcast message (vs sequential unicasts)",
            with: benefit(&base),
            without: benefit(&uni),
            metric: "participant-crash latency benefit (ms), SAN n=3",
        });
    }

    // 3. Handler-work stage: class-1 latency with and without t_work.
    {
        let base = fig6.san_params(3, 0.025);
        let mut no_work = base.clone();
        no_work.t_work = 0.0;
        rows.push(AblationRow {
            name: "receive-handler work stage (vs none)",
            with: latency_replications(&base, reps, seed, 1e4).mean(),
            without: latency_replications(&no_work, reps, seed, 1e4).mean(),
            metric: "class-1 latency (ms), SAN n=3",
        });
    }

    // 4. Nagle on heartbeats: the FD mistake *duration* at T = 20.
    //    With NODELAY a mistake heals at the next heartbeat (a few ms);
    //    with delayed-ack batching the healing heartbeat itself waits
    //    for the ~40 ms flush, so mistakes last far longer — the paper's
    //    sub-12 ms T_M (Fig. 8b) is incompatible with batching.
    {
        let t_m = |nagle: bool| {
            let mut cfg = TestbedConfig::class3(3, scale.qos_executions().min(150), 20.0, seed);
            cfg.net = NetParams {
                nagle_on_heartbeats: nagle,
                ..NetParams::default()
            };
            let r = run_campaign(&cfg);
            r.qos.expect("class 3 yields QoS").t_m
        };
        rows.push(AblationRow {
            name: "TCP_NODELAY heartbeats (vs Nagle batching)",
            with: t_m(false),
            without: t_m(true),
            metric: "FD mistake duration T_M (ms) at T=20",
        });
    }

    Ablations { rows }
}

impl Ablations {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Ablations — modelling choices and their effect\n");
        for r in &self.rows {
            s.push_str(&format!(
                "* {}\n    {}: {:.3} as modelled, {:.3} ablated\n",
                r.name, r.metric, r.with, r.without
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_have_the_expected_directions() {
        let fig6 = crate::fig6::run(Scale::Quick, 31);
        let a = run(Scale::Quick, 31, &fig6);
        assert_eq!(a.rows.len(), 4);
        let by_name = |n: &str| {
            a.rows
                .iter()
                .find(|r| r.name.starts_with(n))
                .unwrap_or_else(|| panic!("missing ablation {n}"))
        };
        // Bimodal delays widen the latency distribution.
        let bim = by_name("bimodal");
        assert!(
            bim.with > bim.without,
            "bimodal should widen the spread: {} !> {}",
            bim.with,
            bim.without
        );
        // The single-broadcast shortcut overstates the crash benefit.
        let bc = by_name("single broadcast");
        assert!(
            bc.with > bc.without,
            "broadcast shortcut shows larger benefit: {} !> {}",
            bc.with,
            bc.without
        );
        // The work stage carries most of the latency.
        let wk = by_name("receive-handler");
        assert!(
            wk.with > 1.5 * wk.without,
            "work stage dominates: {} vs {}",
            wk.with,
            wk.without
        );
        // Nagle batching makes mistakes last far longer (larger T_M).
        let ng = by_name("TCP_NODELAY");
        assert!(
            ng.with < 0.7 * ng.without,
            "NODELAY must show shorter mistakes: {} vs {}",
            ng.with,
            ng.without
        );
    }
}
