//! Fig. 6 — the cumulative distribution of the end-to-end delay of
//! unicast and broadcast messages, and the bimodal fit of §5.1.
//!
//! This experiment plays the role the real measurements played in the
//! paper: its fitted distributions are the *inputs* of the SAN model
//! (`t_network` = end-to-end delay minus the CPU stages).

use ctsim_models::SanParams;
use ctsim_netsim::{HostParams, NetParams};
use ctsim_stoch::fit::{fit_bimodal_uniform, BimodalFit};
use ctsim_stoch::{Dist, Ecdf};
use ctsim_testbed::measure_delays;

use crate::scale::Scale;

/// The Fig. 6 dataset: measured delay CDFs and their bimodal fits.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Unicast end-to-end delays (ms).
    pub unicast: Ecdf,
    /// Broadcast-to-3 delays, pooled over destinations.
    pub broadcast3: Ecdf,
    /// Broadcast-to-5 delays, pooled over destinations.
    pub broadcast5: Ecdf,
    /// Bimodal-uniform fit of the unicast CDF (the paper's
    /// `U[0.1,0.13]` w.p. 0.8 + `U[0.145,0.35]` w.p. 0.2).
    pub fit_unicast: BimodalFit,
    /// Fit of the broadcast-to-3 delays.
    pub fit_broadcast3: BimodalFit,
    /// Fit of the broadcast-to-5 delays.
    pub fit_broadcast5: BimodalFit,
}

/// Runs the delay measurements and fits.
pub fn run(scale: Scale, seed: u64) -> Fig6 {
    let rounds = scale.ping_rounds();
    let d3 = measure_delays(3, rounds, NetParams::default(), HostParams::default(), seed);
    let d5 = measure_delays(
        5,
        rounds,
        NetParams::default(),
        HostParams::default(),
        seed ^ 0x5a5a,
    );
    let fit_unicast = fit_bimodal_uniform(d3.unicast.samples());
    let fit_broadcast3 = fit_bimodal_uniform(d3.broadcast.samples());
    let fit_broadcast5 = fit_bimodal_uniform(d5.broadcast.samples());
    Fig6 {
        unicast: d3.unicast,
        broadcast3: d3.broadcast,
        broadcast5: d5.broadcast,
        fit_unicast,
        fit_broadcast3,
        fit_broadcast5,
    }
}

impl Fig6 {
    /// Derives the SAN parameters for `n` processes from these
    /// measurements, following §5.1: `t_network` is the fitted
    /// end-to-end delay minus the CPU stages (`t_send + t_receive`),
    /// broadcast `t_network` from the matching broadcast fit.
    ///
    /// # Panics
    /// Panics if `n` is not 3 or 5 and no broadcast fit exists for it
    /// (the paper simulates n = 3 and n = 5 only); for other `n` the
    /// broadcast fit is extrapolated by scaling the to-5 fit.
    pub fn san_params(&self, n: usize, t_send: f64) -> SanParams {
        let mut p = SanParams::paper_baseline(n);
        p.t_send = t_send;
        p.t_receive = t_send;
        // The paper's single `t_send` parameter stands for the whole
        // per-message CPU contribution; our model splits it into a
        // stack stage and a handler-work stage, so the sweep scales
        // both with the calibrated ratio (0.115 / 0.025).
        p.t_work = t_send * (0.115 / 0.025);
        let cpu = t_send * 2.0;
        p.net_unicast = self.fit_unicast.dist.minus_const(cpu);
        let bcast: Dist = match n {
            0..=3 => self.fit_broadcast3.dist.clone(),
            4..=5 => self.fit_broadcast5.dist.clone(),
            _ => {
                // Extrapolate: per-destination wire cost grows linearly.
                let f = (n - 1) as f64 / 4.0;
                self.fit_broadcast5.dist.scaled(f)
            }
        };
        p.net_broadcast = bcast.minus_const(cpu);
        p
    }

    /// Renders the paper-style summary (fit parameters + quantiles).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Fig. 6 — end-to-end delay CDFs (ms)\n");
        s.push_str("paper fit (unicast): U[0.100,0.130] w.p. 0.80; U[0.145,0.350] w.p. 0.20\n");
        for (name, ecdf, fit) in [
            ("unicast     ", &self.unicast, &self.fit_unicast),
            ("broadcast->3", &self.broadcast3, &self.fit_broadcast3),
            ("broadcast->5", &self.broadcast5, &self.fit_broadcast5),
        ] {
            s.push_str(&format!(
                "{name}: q10 {:.3}  q50 {:.3}  q80 {:.3}  q95 {:.3}  mean {:.3}  | fit p1={:.2} {:?}\n",
                ecdf.quantile(0.10),
                ecdf.quantile(0.50),
                ecdf.quantile(0.80),
                ecdf.quantile(0.95),
                ecdf.mean(),
                fit.p1,
                fit.dist,
            ));
        }
        s
    }

    /// The CDF series for plotting (x = ms, y = probability), matching
    /// the paper's figure.
    pub fn series(&self, points: usize) -> [(&'static str, Vec<(f64, f64)>); 3] {
        [
            ("unicast", self.unicast.series(points)),
            ("broadcast to 3", self.broadcast3.series(points)),
            ("broadcast to 5", self.broadcast5.series(points)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_reproduces_paper_shape() {
        let f = run(Scale::Quick, 42);
        // Unicast fast mode near the paper's [0.10, 0.13].
        let q50 = f.unicast.quantile(0.5);
        assert!((0.08..0.16).contains(&q50), "unicast median {q50}");
        // Broadcasts stochastically dominate unicast.
        assert!(f.broadcast3.quantile(0.5) > q50);
        assert!(f.broadcast5.quantile(0.5) > f.broadcast3.quantile(0.5));
        // The fit captures a fast mode with most of the mass.
        assert!(f.fit_unicast.p1 > 0.5, "p1 = {}", f.fit_unicast.p1);
    }

    #[test]
    fn san_params_derivation_subtracts_cpu_stages() {
        let f = run(Scale::Quick, 1);
        let p = f.san_params(3, 0.025);
        assert!(p.net_unicast.mean() < f.fit_unicast.dist.mean());
        assert!(
            (f.fit_unicast.dist.mean() - p.net_unicast.mean() - 0.05).abs() < 0.02,
            "roughly t_send + t_receive subtracted"
        );
        // Extrapolation path for n = 7 exists.
        let p7 = f.san_params(7, 0.025);
        assert!(p7.net_broadcast.mean() > p.net_broadcast.mean());
    }
}
