//! `repro` — regenerates every table and figure of the DSN 2002 paper.
//!
//! ```text
//! repro <fig6|fig7a|fig7b|table1|fig8|fig9a|fig9b|campaign|all> \
//!       [--scale quick|default|full] [--seed N] [--out DIR] \
//!       [--ph-order K] [--threads T] [--n N] [--solver BACKEND] \
//!       [--generator csr|kron] [--trace FILE.json] [--metrics FILE.json]
//! ```
//!
//! `repro campaign` runs the scenario-campaign engine
//! (`ctsim_experiments::campaign`): a parameter grid — either the
//! cross-product of `--ns`/`--ph-orders`/`--service-scales`/
//! `--net-scales`/`--backends` or an explicit `--grid FILE.csv` — is
//! swept through the analytic solver with one exploration per
//! structural family (cached reachability + rate-only CSR rebuild) and
//! warm-started iterative solves. `--verify-cold` re-runs every point
//! cold and records per-row agreement plus the measured speedup (the
//! CI campaign job gates on those columns); `--measure E` adds testbed
//! measured-latency reference rows with `E` executions per `n`. Output:
//! `campaign.csv` (per-point rows), `campaign_heatmap_*.csv` (dense
//! latency grids), `campaign_summary.json`, and, with `--measure`,
//! `campaign_measured.csv`.
//!
//! Text renderings (with the paper's reference values inline) go to
//! stdout; CSV series go to `--out` (default `results/`).
//!
//! `--ph-order`, `--threads`, `--n`, and `--solver` drive the
//! `analytic` overlay: the phase-type expansion order used to
//! Markovianize the paper's deterministic/bi-modal stages, the
//! state-space exploration worker count (0 = all cores; the result is
//! identical for any value — it is reused for the solver's sharded
//! SpMV), an explicit process count replacing the scale's n sweep
//! (`--n 3` lifts the state cap to the model's recommended value so
//! the half-million-state order-2 expansion actually solves — the CI
//! scalability gate runs exactly that), and the linear-algebra backend
//! (`gauss-seidel` | `jacobi` | `krylov`) the CTMC is solved with —
//! every backend must produce the same means, which the CI
//! `solver-backends` matrix job gates at ≤ 1e-6 relative.
//! `--generator` picks the generator representation the solver
//! iterates on: `csr` materializes the rate matrix, `kron` keeps the
//! Kronecker-factored activity terms and applies them matrix-free.
//! Both must produce the same means — the CI `generator-agreement`
//! job gates them at ≤ 1e-6 relative, too.
//!
//! `--trace` and `--metrics` turn the `ctsim-obs` telemetry on for the
//! `analytic` run and write a chrome://tracing `trace_event` file and a
//! metrics JSON document (counters, gauges, residual traces,
//! histograms) to the given paths; the human-readable run summary goes
//! to stderr. Telemetry never changes results — it only observes.
//!
//! Resilience knobs (see `docs/RESILIENCE.md`): `--fallback` opts the
//! solves into graceful-degradation backend chains (Krylov →
//! Gauss-Seidel → Jacobi on recoverable errors, recorded per row);
//! `--checkpoint FILE` journals every completed campaign point to an
//! append-only crash-safe file and `--resume` replays it, skipping
//! already-solved points with bit-identical results; `--failpoints
//! SPEC` (or the `CTSIM_FAILPOINTS` env var) arms the deterministic
//! fault-injection registry with `--failpoint-seed N` feeding its
//! per-site RNG substreams — the CI chaos job drives retry, typed
//! failure, and crash/resume paths through exactly these flags.

use std::fs;
use std::path::{Path, PathBuf};

use ctsim_experiments::analytic::AnalyticOptions;
use ctsim_experiments::campaign::{self, CampaignOptions, PointRow};
use ctsim_experiments::{ablations, analytic, fig6, fig7, fig8, fig9, table1, throughput, Scale};

struct Args {
    command: String,
    scale: Scale,
    seed: u64,
    out: PathBuf,
    ph: AnalyticOptions,
    campaign: CampaignOptions,
    failpoints: Option<String>,
    failpoint_seed: u64,
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    s.split(',')
        .map(|x| {
            x.trim()
                .parse::<T>()
                .map_err(|e| format!("bad {what} `{x}`: {e}"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut scale = Scale::Default;
    let mut seed = 20020623; // DSN 2002 conference date
    let mut out = PathBuf::from("results");
    let mut ph = AnalyticOptions::default();
    let mut campaign = CampaignOptions::default();
    let mut failpoints = None;
    let mut failpoint_seed = 0u64;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--grid" => {
                campaign.grid = Some(PathBuf::from(
                    args.next().ok_or("missing value for --grid")?,
                ));
            }
            "--ns" => {
                campaign.ns = parse_list(&args.next().ok_or("missing value for --ns")?, "n")?;
            }
            "--ph-orders" => {
                campaign.ph_orders = parse_list(
                    &args.next().ok_or("missing value for --ph-orders")?,
                    "ph order",
                )?;
            }
            "--service-scales" => {
                campaign.service_scales = parse_list(
                    &args.next().ok_or("missing value for --service-scales")?,
                    "service scale",
                )?;
            }
            "--net-scales" => {
                campaign.net_scales = parse_list(
                    &args.next().ok_or("missing value for --net-scales")?,
                    "net scale",
                )?;
            }
            "--backends" => {
                campaign.backends = parse_list(
                    &args.next().ok_or("missing value for --backends")?,
                    "backend",
                )?;
            }
            "--verify-cold" => campaign.verify_cold = true,
            "--fallback" => ph.fallback = true,
            "--checkpoint" => {
                campaign.checkpoint = Some(PathBuf::from(
                    args.next().ok_or("missing value for --checkpoint")?,
                ));
            }
            "--resume" => campaign.resume = true,
            "--failpoints" => {
                failpoints = Some(args.next().ok_or("missing value for --failpoints")?);
            }
            "--failpoint-seed" => {
                failpoint_seed = args
                    .next()
                    .ok_or("missing value for --failpoint-seed")?
                    .parse::<u64>()
                    .map_err(|e| e.to_string())?;
            }
            "--measure" => {
                campaign.measure = args
                    .next()
                    .ok_or("missing value for --measure")?
                    .parse::<u32>()
                    .map_err(|e| e.to_string())?;
            }
            "--scale" => {
                scale = args.next().ok_or("missing value for --scale")?.parse()?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("missing value for --seed")?
                    .parse::<u64>()
                    .map_err(|e| e.to_string())?;
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("missing value for --out")?);
            }
            "--ph-order" => {
                ph.ph_order = args
                    .next()
                    .ok_or("missing value for --ph-order")?
                    .parse::<u32>()
                    .map_err(|e| e.to_string())?;
            }
            "--threads" => {
                ph.threads = args
                    .next()
                    .ok_or("missing value for --threads")?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?;
            }
            "--n" => {
                ph.n = Some(
                    args.next()
                        .ok_or("missing value for --n")?
                        .parse::<usize>()
                        .map_err(|e| e.to_string())?,
                );
            }
            "--solver" => {
                ph.backend = args.next().ok_or("missing value for --solver")?.parse()?;
            }
            "--generator" => {
                ph.generator = args
                    .next()
                    .ok_or("missing value for --generator")?
                    .parse()?;
            }
            "--spill-budget" => {
                ph.spill_budget = Some(ctsim_experiments::parse_size(
                    &args.next().ok_or("missing value for --spill-budget")?,
                )?);
            }
            "--dedup" => {
                ph.dedup = args.next().ok_or("missing value for --dedup")?.parse()?;
            }
            "--trace" => {
                ph.trace = Some(PathBuf::from(
                    args.next().ok_or("missing value for --trace")?,
                ));
            }
            "--metrics" => {
                ph.metrics = Some(PathBuf::from(
                    args.next().ok_or("missing value for --metrics")?,
                ));
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    // The shared knobs drive the campaign too: one `--threads` /
    // `--trace` / `--metrics` / `--fallback` set regardless of the
    // subcommand.
    campaign.threads = ph.threads;
    campaign.trace = ph.trace.clone();
    campaign.metrics = ph.metrics.clone();
    campaign.fallback = ph.fallback;
    Ok(Args {
        command,
        scale,
        seed,
        out,
        ph,
        campaign,
        failpoints,
        failpoint_seed,
    })
}

fn usage() -> String {
    "usage: repro <fig6|fig7a|fig7b|table1|fig8|fig9a|fig9b|ablations|throughput|analytic|campaign|all> \
     [--scale quick|default|full] [--seed N] [--out DIR] [--ph-order K] [--threads T] [--n N] \
     [--solver gauss-seidel|jacobi|krylov] [--generator csr|kron] [--spill-budget BYTES[K|M|G]] \
     [--dedup auto|resident|external] \
     [--trace FILE.json] [--metrics FILE.json] \
     [--grid FILE.csv] [--ns LIST] [--ph-orders LIST] [--service-scales LIST] \
     [--net-scales LIST] [--backends LIST] [--verify-cold] [--measure EXECUTIONS] \
     [--fallback] [--checkpoint FILE] [--resume] [--failpoints SPEC] [--failpoint-seed N]"
        .to_string()
}

fn write_csv(path: &Path, header: &str, rows: impl IntoIterator<Item = String>) {
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(&r);
        body.push('\n');
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Arm fault injection before any work: `--failpoints` wins,
    // otherwise `CTSIM_FAILPOINTS` is honored so harnesses can inject
    // without touching the command line.
    let armed = match &args.failpoints {
        Some(spec) => ctsim_resilience::fail::configure(spec, args.failpoint_seed).map(|()| true),
        None => ctsim_resilience::fail::configure_from_env(),
    };
    match armed {
        Ok(true) => eprintln!("failpoints armed (seed {})", args.failpoint_seed),
        Ok(false) => {}
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    let all = args.command == "all";
    let want = |c: &str| all || args.command == c;
    let mut ran = false;

    // Fig. 6 doubles as the calibration input for every simulation
    // figure, so run it whenever anything downstream needs it.
    let need_fig6 =
        want("fig6") || want("fig7b") || want("table1") || want("fig9b") || want("ablations");
    let f6 = need_fig6.then(|| fig6::run(args.scale, args.seed));

    if want("fig6") {
        ran = true;
        let f6 = f6.as_ref().expect("computed above");
        println!("{}", f6.render());
        for (name, series) in f6.series(120) {
            let fname = format!("fig6_{}.csv", name.replace(' ', "_"));
            write_csv(
                &args.out.join(fname),
                "delay_ms,cdf",
                series.iter().map(|(x, y)| format!("{x:.6},{y:.6}")),
            );
        }
    }

    let need_f7a = want("fig7a") || want("fig7b");
    let f7a = need_f7a.then(|| fig7::run_fig7a(args.scale, args.seed));

    if want("fig7a") {
        ran = true;
        let f7a = f7a.as_ref().expect("computed above");
        println!("{}", f7a.render());
        for row in &f7a.rows {
            write_csv(
                &args.out.join(format!("fig7a_n{}.csv", row.n)),
                "latency_ms,cdf",
                row.ecdf
                    .series(200)
                    .iter()
                    .map(|(x, y)| format!("{x:.6},{y:.6}")),
            );
        }
    }

    if want("fig7b") {
        ran = true;
        let f6 = f6.as_ref().expect("computed above");
        let measured = f7a
            .as_ref()
            .expect("computed above")
            .rows
            .iter()
            .find(|r| r.n == 5)
            .expect("n = 5 measured")
            .clone();
        let f7b = fig7::run_fig7b(args.scale, args.seed, f6, measured);
        println!("{}", f7b.render());
        for p in &f7b.sweep {
            write_csv(
                &args.out.join(format!("fig7b_tsend_{:.3}.csv", p.t_send)),
                "latency_ms,cdf",
                p.ecdf
                    .series(200)
                    .iter()
                    .map(|(x, y)| format!("{x:.6},{y:.6}")),
            );
        }
    }

    if want("table1") {
        ran = true;
        let f6 = f6.as_ref().expect("computed above");
        let t1 = table1::run(args.scale, args.seed, f6);
        println!("{}", t1.render());
        write_csv(
            &args.out.join("table1.csv"),
            "scenario,n,meas_ms,meas_ci90,sim_ms",
            t1.rows.iter().map(|r| {
                format!(
                    "{:?},{},{:.4},{:.4},{}",
                    r.scenario,
                    r.n,
                    r.meas,
                    r.meas_ci90,
                    r.sim.map_or(String::new(), |s| format!("{s:.4}")),
                )
            }),
        );
    }

    let need_f8 = want("fig8") || want("fig9a") || want("fig9b");
    let f8 = need_f8.then(|| fig8::run(args.scale, args.seed));

    if want("fig8") {
        ran = true;
        let f8 = f8.as_ref().expect("computed above");
        println!("{}", f8.render());
        write_csv(
            &args.out.join("fig8.csv"),
            "n,timeout_ms,t_mr_ms,t_mr_ci90,t_m_ms,t_m_ci90",
            f8.points.iter().map(|p| {
                format!(
                    "{},{},{:.4},{:.4},{:.4},{:.4}",
                    p.n, p.timeout, p.t_mr, p.t_mr_ci90, p.t_m, p.t_m_ci90
                )
            }),
        );
    }

    if want("fig9a") {
        ran = true;
        let f8 = f8.as_ref().expect("computed above");
        println!("{}", fig9::render_fig9a(f8));
        write_csv(
            &args.out.join("fig9a.csv"),
            "n,timeout_ms,latency_ms,latency_ci90,undecided_frac",
            f8.points.iter().map(|p| {
                format!(
                    "{},{},{:.4},{:.4},{:.4}",
                    p.n, p.timeout, p.latency, p.latency_ci90, p.undecided_frac
                )
            }),
        );
    }

    if want("fig9b") {
        ran = true;
        let f6 = f6.as_ref().expect("computed above");
        let f8 = f8.as_ref().expect("computed above");
        let f9b = fig9::run_fig9b(args.scale, args.seed, f6, f8);
        println!("{}", f9b.render());
        for n in [3usize, 5] {
            if let Some((small, large)) = f9b.validation_gaps(n) {
                println!(
                    "validation n={n}: relative sim-meas gap {:.0}% at smallest T, {:.0}% at largest T",
                    100.0 * small,
                    100.0 * large
                );
            }
        }
        write_csv(
            &args.out.join("fig9b.csv"),
            "n,timeout_ms,meas_ms,sim_det_ms,sim_exp_ms,t_mr_ms,t_m_ms",
            f9b.rows.iter().map(|r| {
                format!(
                    "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                    r.n, r.timeout, r.measured, r.sim_det, r.sim_exp, r.t_mr, r.t_m
                )
            }),
        );
    }

    if want("ablations") {
        ran = true;
        let f6 = f6.as_ref().expect("computed above");
        let a = ablations::run(args.scale, args.seed, f6);
        println!("{}", a.render());
        write_csv(
            &args.out.join("ablations.csv"),
            "name,metric,with,without",
            a.rows
                .iter()
                .map(|r| format!("{:?},{:?},{:.4},{:.4}", r.name, r.metric, r.with, r.without)),
        );
    }

    if want("throughput") {
        ran = true;
        let t = throughput::run(args.scale, args.seed);
        println!("{}", t.render());
        write_csv(
            &args.out.join("throughput.csv"),
            "n,per_second,inter_decision_ms,isolated_latency_ms",
            t.rows.iter().map(|r| {
                format!(
                    "{},{:.2},{:.4},{:.4}",
                    r.n, r.per_second, r.inter_decision_ms, r.isolated_latency_ms
                )
            }),
        );
    }

    if want("analytic") {
        ran = true;
        // A typed solver failure — e.g. `SpillFailed` after retry
        // exhaustion, with its attempt trace — exits with the error
        // rendered, never a panic.
        let a = match analytic::run_with(args.scale, args.seed, &args.ph) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("analytic: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", a.render());
        write_csv(
            &args.out.join("analytic.csv"),
            "scenario,n,ph_order,states,analytic_ms,ph_raw_ms,solver,generator,solve_ms,sim_ms,\
             sim_ci90,agrees,ph_sim_ms,ph_sim_ci90,engine",
            a.rows.iter().map(|r| {
                // Both verdicts are tri-state so a capped/skipped solve
                // is never mistaken for a disagreement. `engine` — the
                // engine-vs-engine cross-validation on the identical
                // stochastic model — is deliberately the *last* column:
                // CI gates on `,false$`, while `agrees` (distance to
                // the paper's real parameters, bounded by the
                // documented phase-type support-edge bias at n ≥ 3) is
                // reported but not gated.
                let verdict = |ok: bool| {
                    if r.skipped.is_some() {
                        "skip"
                    } else if ok {
                        "true"
                    } else {
                        "false"
                    }
                };
                format!(
                    "{:?},{},{},{},{},{},{},{},{:.3},{:.4},{:.4},{},{},{},{}",
                    r.scenario,
                    r.n,
                    r.ph_order.map_or(String::new(), |k| k.to_string()),
                    r.states,
                    r.analytic_ms.map_or(String::new(), |v| format!("{v:.6}")),
                    r.ph_raw_ms.map_or(String::new(), |v| format!("{v:.6}")),
                    r.backend,
                    r.generator,
                    r.solve_ms,
                    r.sim_ms,
                    r.sim_ci90,
                    verdict(r.agrees()),
                    r.ph_sim_ms.map_or(String::new(), |v| format!("{v:.4}")),
                    r.ph_sim_ci90.map_or(String::new(), |v| format!("{v:.4}")),
                    verdict(r.engine_agrees()),
                )
            }),
        );
        // Peak-memory record for the whole analytic pipeline (explore +
        // CSR + solve): the CI scalability job uploads this CSV and its
        // spill-budget leg uses it to show the budget actually binds.
        write_csv(
            &args.out.join("peak_memory.csv"),
            "command,n,ph_order,threads,spill_budget_bytes,dedup,peak_rss_mb",
            std::iter::once(format!(
                "analytic,{},{},{},{},{},{:.1}",
                args.ph.n.map_or(String::new(), |n| n.to_string()),
                args.ph.ph_order,
                args.ph.threads,
                args.ph
                    .spill_budget
                    .map_or(String::new(), |b| b.to_string()),
                args.ph.dedup,
                ctsim_experiments::peak_rss_mb(),
            )),
        );
        for r in &a.rows {
            if r.cdf.is_empty() {
                continue;
            }
            let model = r.ph_order.map_or("exp".to_string(), |k| format!("ph{k}"));
            write_csv(
                &args.out.join(format!(
                    "analytic_cdf_{:?}_{model}_n{}.csv",
                    r.scenario, r.n
                )),
                "latency_ms,cdf",
                r.cdf.iter().map(|(t, p)| format!("{t:.6},{p:.6}")),
            );
        }
    }

    if want("campaign") {
        ran = true;
        let c = match campaign::run_with(args.seed, &args.campaign) {
            Ok(c) => c,
            Err(e @ campaign::CampaignError::Grid(_)) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        println!("{}", c.render());
        write_csv(
            &args.out.join("campaign.csv"),
            PointRow::csv_header(),
            c.rows.iter().map(PointRow::csv),
        );
        // Heat-map blocks arrive as complete CSV documents (their
        // column set depends on the grid), so they bypass write_csv.
        for (name, csv) in c.heatmaps() {
            let path = args.out.join(format!("campaign_{name}.csv"));
            if let Some(dir) = path.parent() {
                let _ = fs::create_dir_all(dir);
            }
            match fs::write(&path, csv) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        let summary = args.out.join("campaign_summary.json");
        if let Some(dir) = summary.parent() {
            let _ = fs::create_dir_all(dir);
        }
        match fs::write(&summary, c.summary_json()) {
            Ok(()) => println!("wrote {}", summary.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", summary.display()),
        }
        if !c.measured.is_empty() {
            write_csv(
                &args.out.join("campaign_measured.csv"),
                "n,measured_ms,ci90",
                c.measured
                    .iter()
                    .map(|m| format!("{},{:.4},{:.4}", m.n, m.mean_ms, m.ci90)),
            );
        }
    }

    if !ran {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
}
