//! Experiment scale: how much statistical effort each figure gets.

/// Campaign/replication sizes for the experiment suite.
///
/// `Full` follows the paper (5000 executions for Fig. 7(a); 20 runs of
/// 1000 executions per setting for Figs. 8-9); `Default` keeps the same
/// procedures at roughly a tenth of the effort; `Quick` is for tests
/// and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Test/bench scale (seconds).
    Quick,
    /// Routine reproduction scale (minutes).
    Default,
    /// The paper's campaign sizes (tens of minutes).
    Full,
}

impl Scale {
    /// Consensus executions per class-1/2 campaign (paper: 5000).
    pub fn executions(self) -> u32 {
        match self {
            Scale::Quick => 120,
            Scale::Default => 800,
            Scale::Full => 5000,
        }
    }

    /// Independent runs per class-3 setting (paper: 20).
    pub fn qos_runs(self) -> u32 {
        match self {
            Scale::Quick => 2,
            Scale::Default => 4,
            Scale::Full => 20,
        }
    }

    /// Executions per class-3 run (paper: 1000).
    pub fn qos_executions(self) -> u32 {
        match self {
            Scale::Quick => 60,
            Scale::Default => 250,
            Scale::Full => 1000,
        }
    }

    /// SAN simulation replications per point.
    pub fn san_reps(self) -> usize {
        match self {
            Scale::Quick => 150,
            Scale::Default => 800,
            Scale::Full => 3000,
        }
    }

    /// Ping messages per phase for the delay measurements.
    pub fn ping_rounds(self) -> u32 {
        match self {
            Scale::Quick => 400,
            Scale::Default => 2000,
            Scale::Full => 10_000,
        }
    }

    /// Process counts for measurement figures (paper: 3,5,7,9,11).
    pub fn measurement_ns(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[3, 5],
            _ => &[3, 5, 7, 9, 11],
        }
    }

    /// Process counts for simulation figures (paper: 3 and 5).
    pub fn simulation_ns(self) -> &'static [usize] {
        &[3, 5]
    }

    /// The failure-detection timeout grid (ms) for Figs. 8-9
    /// (log-spaced like the paper's plots).
    pub fn timeout_grid(self) -> &'static [f64] {
        match self {
            Scale::Quick => &[1.0, 10.0, 30.0, 100.0],
            _ => &[
                1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0, 40.0, 70.0, 100.0,
            ],
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "quick" => Ok(Scale::Quick),
            "default" => Ok(Scale::Default),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale `{other}` (quick|default|full)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_campaign_sizes() {
        assert_eq!(Scale::Full.executions(), 5000);
        assert_eq!(Scale::Full.qos_runs(), 20);
        assert_eq!(Scale::Full.qos_executions(), 1000);
        assert_eq!(Scale::Full.measurement_ns(), &[3, 5, 7, 9, 11]);
        assert_eq!(Scale::Full.simulation_ns(), &[3, 5]);
    }

    #[test]
    fn parse_from_str() {
        assert_eq!("quick".parse::<Scale>().unwrap(), Scale::Quick);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("huge".parse::<Scale>().is_err());
    }

    #[test]
    fn scales_are_ordered_by_effort() {
        assert!(Scale::Quick.executions() < Scale::Default.executions());
        assert!(Scale::Default.executions() < Scale::Full.executions());
        assert!(Scale::Quick.san_reps() < Scale::Full.san_reps());
    }
}
