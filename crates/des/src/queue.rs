//! The pending-event set: a cancellable priority queue of timed events.
//!
//! Two properties matter for reproducible distributed-system simulation:
//!
//! 1. **Stable tie-breaking.** Events scheduled for the same instant fire
//!    in the order they were scheduled (FIFO). Without this, simultaneous
//!    events — ubiquitous with deterministic service times — would fire in
//!    heap order, which is an artifact of the container.
//! 2. **O(log n) cancellation.** Failure-detector timeouts are rescheduled
//!    on every received message; cancellation must not require a scan.
//!    Cancellation is implemented lazily: a tombstone is left in the heap
//!    and skipped on pop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable to cancel it.
///
/// Handles are unique over the lifetime of one [`EventQueue`] and become
/// stale (harmlessly) once the event has fired or been cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    time: SimTime,
    seq: u64,
}

/// A cancellable future-event queue ordered by time, FIFO within a tick.
///
/// `E` is the event payload type; the queue itself never interprets it.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(HeapKey, u64)>>,
    // Payloads are kept out of the heap so cancellation is O(1) amortised.
    slots: std::collections::HashMap<u64, E>,
    next_seq: u64,
    now: SimTime,
    fired: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: std::collections::HashMap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            fired: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of events fired so far (monotonic counter).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Schedules `event` at absolute time `t`.
    ///
    /// Scheduling in the past is a modelling error; in debug builds it
    /// panics, in release builds the event fires "now" (clamped).
    pub fn schedule_at(&mut self, t: SimTime, event: E) -> EventHandle {
        debug_assert!(
            t >= self.now,
            "scheduling into the past: {t} < {}",
            self.now
        );
        let t = t.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((HeapKey { time: t, seq }, seq)));
        self.slots.insert(seq, event);
        EventHandle(seq)
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns the payload if the event was
    /// still pending, or `None` if it already fired or was cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        self.slots.remove(&handle.0)
    }

    /// Whether the event behind `handle` is still pending.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.slots.contains_key(&handle.0)
    }

    /// The time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|Reverse((k, _))| k.time)
    }

    /// Pops the earliest live event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_tombstones();
        let Reverse((key, seq)) = self.heap.pop()?;
        let ev = self
            .slots
            .remove(&seq)
            .expect("tombstones were skipped, slot must exist");
        debug_assert!(key.time >= self.now, "event queue went backwards");
        self.now = key.time;
        self.fired += 1;
        Some((key.time, ev))
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
    }

    fn skip_tombstones(&mut self) {
        while let Some(Reverse((_, seq))) = self.heap.peek() {
            if self.slots.contains_key(seq) {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(5.0), 'c');
        q.schedule_at(SimTime::from_ms(1.0), 'a');
        q.schedule_at(SimTime::from_ms(3.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(2.0));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(2.0), 1);
        q.pop();
        q.schedule_in(SimDuration::from_ms(3.0), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(5.0));
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_at(SimTime::from_ms(1.0), "doomed");
        q.schedule_at(SimTime::from_ms(2.0), "survivor");
        assert!(q.is_pending(h1));
        assert_eq!(q.cancel(h1), Some("doomed"));
        assert!(!q.is_pending(h1));
        // Double-cancel is a no-op.
        assert_eq!(q.cancel(h1), None);
        assert_eq!(q.len(), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "survivor");
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_head_does_not_block_peek() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_ms(1.0), 1);
        q.schedule_at(SimTime::from_ms(2.0), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2.0)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::from_ms(i as f64), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn events_fired_counts_only_pops() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_ms(1.0), 1);
        q.schedule_at(SimTime::from_ms(2.0), 2);
        q.cancel(h);
        while q.pop().is_some() {}
        assert_eq!(q.events_fired(), 1);
    }

    #[test]
    fn handles_are_unique() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_at(SimTime::from_ms(1.0), ());
        let h2 = q.schedule_at(SimTime::from_ms(1.0), ());
        assert_ne!(h1, h2);
    }
}
