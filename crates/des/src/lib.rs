//! Deterministic discrete-event simulation (DES) kernel.
//!
//! This crate provides the foundation every simulator in the workspace is
//! built on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//!   stored as integers so that runs are exactly reproducible,
//! * [`EventQueue`] — a cancellable pending-event set with *stable*
//!   (FIFO) tie-breaking for simultaneous events,
//! * [`Driver`] — a tiny convenience loop for running a simulation to
//!   quiescence or to a time horizon.
//!
//! The kernel is deliberately free of randomness: distributions and RNG
//! plumbing live in `ctsim-stoch` so that this crate has no dependencies
//! at all.
//!
//! # Example
//!
//! ```
//! use ctsim_des::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule_at(SimTime::from_ms(2.0), "second");
//! q.schedule_at(SimTime::from_ms(1.0), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_ms(1.0));
//! ```

pub mod queue;
pub mod time;

pub use queue::{EventHandle, EventQueue};
pub use time::{SimDuration, SimTime};

/// A minimal driver that pops events from an [`EventQueue`] and hands them
/// to a handler together with mutable simulation state.
///
/// Most simulators in this workspace own their loop directly; `Driver` is
/// for quick tests and simple models.
#[derive(Debug)]
pub struct Driver<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Driver<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Driver<E> {
    /// Creates an empty driver at time zero.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
        }
    }

    /// Shared access to the underlying queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Mutable access to the underlying queue (for scheduling).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Runs until the queue is empty or `horizon` is reached, whichever
    /// comes first. The handler may schedule further events.
    ///
    /// Returns the number of events processed.
    pub fn run_until<S>(
        &mut self,
        state: &mut S,
        horizon: SimTime,
        mut handler: impl FnMut(&mut EventQueue<E>, &mut S, SimTime, E),
    ) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event must pop");
            handler(&mut self.queue, state, t, ev);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_runs_in_time_order_and_respects_horizon() {
        let mut d: Driver<u32> = Driver::new();
        d.queue_mut().schedule_at(SimTime::from_ms(3.0), 3);
        d.queue_mut().schedule_at(SimTime::from_ms(1.0), 1);
        d.queue_mut().schedule_at(SimTime::from_ms(2.0), 2);
        d.queue_mut().schedule_at(SimTime::from_ms(9.0), 9);
        let mut seen = Vec::new();
        let n = d.run_until(&mut seen, SimTime::from_ms(5.0), |_, s, _, e| s.push(e));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1, 2, 3]);
        // The event beyond the horizon is still pending.
        assert_eq!(d.queue().len(), 1);
    }

    #[test]
    fn driver_handler_can_schedule_more_events() {
        let mut d: Driver<u32> = Driver::new();
        d.queue_mut().schedule_at(SimTime::from_ms(1.0), 0);
        let mut count = 0u32;
        d.run_until(&mut count, SimTime::from_ms(10.0), |q, c, t, e| {
            *c += 1;
            if e < 3 {
                q.schedule_at(t + SimDuration::from_ms(1.0), e + 1);
            }
        });
        assert_eq!(count, 4);
    }
}
