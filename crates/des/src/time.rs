//! Virtual time for discrete-event simulation.
//!
//! Times are stored as **integer nanoseconds** so that event ordering is
//! exact and runs are bit-for-bit reproducible across platforms. The
//! experiments in this workspace reason in milliseconds (the paper's unit),
//! so conversion helpers to/from `f64` milliseconds and microseconds are
//! provided.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in nanoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from (fractional) microseconds.
    ///
    /// # Panics
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        SimTime(f64_to_nanos(us * 1_000.0))
    }

    /// Creates a time from (fractional) milliseconds.
    ///
    /// # Panics
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        SimTime(f64_to_nanos(ms * 1_000_000.0))
    }

    /// Creates a time from (fractional) seconds.
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs(s: f64) -> Self {
        SimTime(f64_to_nanos(s * 1_000_000_000.0))
    }

    /// Raw nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is later than `self`
    /// (saturating, like [`std::time::Instant::saturating_duration_since`]).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from (fractional) microseconds.
    ///
    /// # Panics
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        SimDuration(f64_to_nanos(us * 1_000.0))
    }

    /// Creates a duration from (fractional) milliseconds.
    ///
    /// # Panics
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        SimDuration(f64_to_nanos(ms * 1_000_000.0))
    }

    /// Creates a duration from (fractional) seconds.
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs(s: f64) -> Self {
        SimDuration(f64_to_nanos(s * 1_000_000_000.0))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

fn f64_to_nanos(ns: f64) -> u64 {
    assert!(
        ns.is_finite() && ns >= 0.0,
        "time value must be finite and non-negative, got {ns}"
    );
    // Round to the nearest nanosecond; values are far below 2^53 in
    // practice so the conversion is exact enough for simulation input.
    ns.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "negative SimTime difference");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "negative SimDuration difference");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs <= *self, "negative SimDuration difference");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_ms())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert_eq!(t.as_nanos(), 1_500_000);
        assert!((t.as_ms() - 1.5).abs() < 1e-12);
        assert!((t.as_us() - 1500.0).abs() < 1e-9);
        let d = SimDuration::from_us(50.0);
        assert_eq!(d.as_nanos(), 50_000);
        assert!((d.as_secs() - 5e-5).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_behaves() {
        let t0 = SimTime::from_ms(1.0);
        let t1 = t0 + SimDuration::from_ms(2.0);
        assert_eq!(t1, SimTime::from_ms(3.0));
        assert_eq!(t1 - t0, SimDuration::from_ms(2.0));
        assert_eq!(t1 - SimDuration::from_ms(1.0), SimTime::from_ms(2.0));
        assert_eq!(SimDuration::from_ms(1.0) * 3, SimDuration::from_ms(3.0));
        assert_eq!(SimDuration::from_ms(3.0) / 3, SimDuration::from_ms(1.0));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert_eq!(b.saturating_since(a), SimDuration::from_ms(1.0));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_us(999.0) < SimTime::from_ms(1.0));
        assert!(SimTime::MAX > SimTime::from_secs(1e6));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_ms(-1.0);
    }

    #[test]
    fn display_formats_in_ms() {
        assert_eq!(format!("{}", SimTime::from_ms(1.25)), "1.250000ms");
        assert_eq!(format!("{}", SimDuration::from_us(5.0)), "0.005000ms");
    }
}
