//! Analytic solver vs Monte-Carlo engine: wall-clock of one exact
//! uniformization/absorption solve against the replication campaign the
//! simulator needs for a comparable confidence-interval half-width.
//!
//! The solver's answer is exact, so "comparable" is pinned at a 1 %
//! relative 90 % CI — already far looser than the solve. The campaign
//! size is calibrated from a pilot run (CI half-width scales as
//! 1/√reps) and printed with the bench name.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_models::{build_model, latency_replications, SanParams};
use ctsim_san::Marking;
use ctsim_solve::{AnalyticRun, IterOptions, ReachOptions, TransientOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let params = SanParams::exponential_baseline(2);
    let model = build_model(&params);
    let decided: Vec<_> = (0..2)
        .map(|i| model.place(&format!("decided_{i}")).unwrap())
        .collect();
    let goal = move |m: &Marking| decided.iter().any(|&d| m.get(d) > 0);

    let mut g = c.benchmark_group("solver_vs_sim");
    g.sample_size(10);

    // One full analytic pass: explore → CTMC → exact mean.
    g.bench_function("analytic_n2_explore_and_mean", |b| {
        b.iter(|| {
            let run = AnalyticRun::first_passage(&model, &ReachOptions::default(), &goal).unwrap();
            black_box(run.mean(&IterOptions::default()).unwrap().mean_ms)
        })
    });

    // One transient CDF point on the prebuilt CTMC (the marginal cost
    // of each additional curve point).
    let run = AnalyticRun::first_passage(&model, &ReachOptions::default(), &goal).unwrap();
    let exact = run.mean(&IterOptions::default()).unwrap().mean_ms;
    g.bench_function("analytic_n2_transient_cdf_point", |b| {
        b.iter(|| black_box(run.cdf(exact, &TransientOptions::default()).unwrap()))
    });

    // Calibrate the replication count for a 1% relative 90% CI from a
    // pilot campaign, then benchmark a campaign of that size.
    let pilot = latency_replications(&params, 400, BENCH_SEED, 1e4);
    let target_ci = 0.01 * exact;
    let reps_needed = ((400.0 * (pilot.ci90() / target_ci).powi(2)).ceil() as usize).max(400);
    g.bench_function(
        format!("simulator_n2_replications_for_1pct_ci_x{reps_needed}"),
        |b| {
            b.iter(|| black_box(latency_replications(&params, reps_needed, BENCH_SEED, 1e4).mean()))
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
