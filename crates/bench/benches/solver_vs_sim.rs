//! Analytic solver vs Monte-Carlo engine: wall-clock of one exact
//! uniformization/absorption solve against the replication campaign the
//! simulator needs for a comparable confidence-interval half-width.
//!
//! The solver's answer is exact, so "comparable" is pinned at a 1 %
//! relative 90 % CI — already far looser than the solve. The campaign
//! size is calibrated from a pilot run (CI half-width scales as
//! 1/√reps) and printed with the bench name.
//!
//! The `ph_expansion` group measures the phase-type path on the
//! paper's *real* parameters: solve time vs expansion order (n = 2)
//! and exploration wall-clock vs thread count (n = 3 exponential,
//! 1.35 × 10⁵ states). Every measurement is appended to
//! `BENCH_solver.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_models::{build_model, latency_replications, SanParams};
use ctsim_san::Marking;
use ctsim_solve::{
    AnalyticRun, IterOptions, ReachOptions, SolveOptions, StateSpace, TransientOptions,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let params = SanParams::exponential_baseline(2);
    let model = build_model(&params);
    let decided: Vec<_> = (0..2)
        .map(|i| model.place(&format!("decided_{i}")).unwrap())
        .collect();
    let goal = move |m: &Marking| decided.iter().any(|&d| m.get(d) > 0);

    let mut g = c.benchmark_group("solver_vs_sim");
    g.sample_size(10);

    // One full analytic pass: explore → CTMC → exact mean.
    g.bench_function("analytic_n2_explore_and_mean", |b| {
        b.iter(|| {
            let run = AnalyticRun::first_passage(&model, &ReachOptions::default(), &goal).unwrap();
            black_box(run.mean(&IterOptions::default()).unwrap().mean_ms)
        })
    });

    // One transient CDF point on the prebuilt CTMC (the marginal cost
    // of each additional curve point).
    let run = AnalyticRun::first_passage(&model, &ReachOptions::default(), &goal).unwrap();
    let exact = run.mean(&IterOptions::default()).unwrap().mean_ms;
    g.bench_function("analytic_n2_transient_cdf_point", |b| {
        b.iter(|| black_box(run.cdf(exact, &TransientOptions::default()).unwrap()))
    });

    // Calibrate the replication count for a 1% relative 90% CI from a
    // pilot campaign, then benchmark a campaign of that size.
    let pilot = latency_replications(&params, 400, BENCH_SEED, 1e4);
    let target_ci = 0.01 * exact;
    let reps_needed = ((400.0 * (pilot.ci90() / target_ci).powi(2)).ceil() as usize).max(400);
    g.bench_function(
        format!("simulator_n2_replications_for_1pct_ci_x{reps_needed}"),
        |b| {
            b.iter(|| black_box(latency_replications(&params, reps_needed, BENCH_SEED, 1e4).mean()))
        },
    );
    g.finish();

    ph_expansion(c);
    write_results_json(c);
}

/// Phase-type expansion: solve time vs order on the paper's real
/// (deterministic/bi-modal) n = 2 parameters, and exploration time vs
/// thread count on the n = 3 exponential model.
fn ph_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("ph_expansion");
    g.sample_size(10);

    let params = SanParams::paper_baseline(2);
    let model = build_model(&params);
    let decided: Vec<_> = (0..2)
        .map(|i| model.place(&format!("decided_{i}")).unwrap())
        .collect();
    let goal = move |m: &Marking| decided.iter().any(|&d| m.get(d) > 0);

    for order in [1u32, 2, 4, 8] {
        let opts = SolveOptions::ph(order, 1);
        // Record the state count in the name so BENCH_solver.json
        // doubles as the growth table's data source.
        let states = AnalyticRun::first_passage_with(&model, &opts, &goal)
            .unwrap()
            .space()
            .len();
        g.bench_function(format!("paper_n2_order{order}_states{states}"), |b| {
            b.iter(|| {
                let run = AnalyticRun::first_passage_with(&model, &opts, &goal).unwrap();
                black_box(run.mean(&IterOptions::default()).unwrap().mean_ms)
            })
        });
    }

    // Thread scaling on a space large enough to shard: the n = 3
    // exponential model (≈ 1.35 × 10⁵ tangible states). One full
    // exploration per iteration; the result is identical per thread
    // count (asserted by the property tests), only wall-clock moves.
    let params3 = SanParams::exponential_baseline(3);
    let model3 = build_model(&params3);
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut sweep = vec![1usize, 2, cores];
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        let opts = ReachOptions {
            threads,
            ..ReachOptions::default()
        };
        g.bench_function(format!("explore_exp_n3_threads{threads}"), |b| {
            b.iter(|| black_box(StateSpace::explore(&model3, &opts).unwrap().len()))
        });
    }
    g.finish();
}

/// Appends every measurement of this run to `BENCH_solver.json` at the
/// workspace root (overwritten each run; CI uploads it as an artifact).
fn write_results_json(c: &Criterion) {
    let mut body = String::from("{\n  \"bench\": \"solver_vs_sim\",\n");
    body.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if c.is_full() { "bench" } else { "smoke" }
    ));
    body.push_str("  \"results\": [\n");
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            format!(
                "    {{ \"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {} }}",
                r.name, r.ns_per_iter, r.iters
            )
        })
        .collect();
    body.push_str(&rows.join(",\n"));
    body.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
