//! Analytic solver vs Monte-Carlo engine: wall-clock of one exact
//! uniformization/absorption solve against the replication campaign the
//! simulator needs for a comparable confidence-interval half-width.
//!
//! The solver's answer is exact, so "comparable" is pinned at a 1 %
//! relative 90 % CI — already far looser than the solve. The campaign
//! size is calibrated from a pilot run (CI half-width scales as
//! 1/√reps) and printed with the bench name.
//!
//! The `ph_expansion` group measures the phase-type path on the
//! paper's *real* parameters: solve time vs expansion order (n = 2).
//! The `concurrent_intern` group sweeps exploration threads over the
//! lock-free intern table at n = 2 (order-4 expansion, latency-scale)
//! and n = 3 (exponential ≈ 1.35 × 10⁵ states, order-2 ≈ 5.3 × 10⁵) —
//! its rows are timed directly (best of a fixed repeat count, so even
//! the smoke run yields a stable number) and carry the state count in
//! the name, making each row a throughput measurement. The
//! `kron_matvec` group races the forward `Q v` product of the
//! matrix-free Kronecker descriptor against the materialized CSR
//! matrix on the n = 3 space, recording peak live-heap for both. The
//! `campaign` group times the scenario-campaign engine's cached+warm
//! grid path against the same grid solved cold, plus its deterministic
//! cache hit-rate. Every measurement is appended to
//! `BENCH_solver.json` at the workspace root; `ci/bench_baseline.json`
//! pins the committed baseline that the `bench_check` binary gates
//! against in CI.

use criterion::{criterion_group, criterion_main, BenchResult, Criterion};
use ctsim_bench::alloc_counter::{self, CountingAlloc};
use ctsim_bench::BENCH_SEED;
use ctsim_models::{build_model, decided_place_ids, latency_replications, SanParams};
use ctsim_san::Marking;
use ctsim_solve::{
    AnalyticRun, DedupMode, GeneratorBackend, IterOptions, LinOp, ReachOptions, SolveOptions,
    SolverBackend, SpillOptions, StateSpace, TransientOptions,
};
use std::hint::black_box;
use std::time::Instant;

/// Exact live-heap accounting for the self-timed rows: the explore
/// rows carry their peak bytes so `bench_check` can gate peak-memory
/// regressions alongside throughput.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn bench(c: &mut Criterion) {
    let params = SanParams::exponential_baseline(2);
    let model = build_model(&params);
    let decided: Vec<_> = (0..2)
        .map(|i| model.place(&format!("decided_{i}")).unwrap())
        .collect();
    let goal = move |m: &Marking| decided.iter().any(|&d| m.get(d) > 0);

    let mut g = c.benchmark_group("solver_vs_sim");
    g.sample_size(10);

    // One full analytic pass: explore → CTMC → exact mean.
    g.bench_function("analytic_n2_explore_and_mean", |b| {
        b.iter(|| {
            let run = AnalyticRun::first_passage(&model, &ReachOptions::default(), &goal).unwrap();
            black_box(run.mean(&IterOptions::default()).unwrap().mean_ms)
        })
    });

    // One transient CDF point on the prebuilt CTMC (the marginal cost
    // of each additional curve point).
    let run = AnalyticRun::first_passage(&model, &ReachOptions::default(), &goal).unwrap();
    let exact = run.mean(&IterOptions::default()).unwrap().mean_ms;
    g.bench_function("analytic_n2_transient_cdf_point", |b| {
        b.iter(|| black_box(run.cdf(exact, &TransientOptions::default()).unwrap()))
    });

    // Calibrate the replication count for a 1% relative 90% CI from a
    // pilot campaign, then benchmark a campaign of that size.
    let pilot = latency_replications(&params, 400, BENCH_SEED, 1e4);
    let target_ci = 0.01 * exact;
    let reps_needed = ((400.0 * (pilot.ci90() / target_ci).powi(2)).ceil() as usize).max(400);
    g.bench_function(
        format!("simulator_n2_replications_for_1pct_ci_x{reps_needed}"),
        |b| {
            b.iter(|| black_box(latency_replications(&params, reps_needed, BENCH_SEED, 1e4).mean()))
        },
    );
    g.finish();

    ph_expansion(c);
    let mut extra = concurrent_intern();
    extra.extend(out_of_core());
    extra.extend(solver_backends());
    extra.extend(kron_matvec());
    extra.extend(campaign_grid());
    write_results_json(c, &extra);
}

/// The scenario-campaign engine on a dense rate-only grid: the paper's
/// n = 2 order-8 model (267 states) swept over 16 service scales with
/// the Krylov backend, once through the campaign path (cached
/// reachability + rate-only CSR rebuild + warm-started solves) and once
/// cold (fresh exploration + cold solve per point, from the same
/// `--verify-cold` run). Three gated rows:
///
/// * `campaign/grid_warm_..._states<total>` — campaign-path wall-clock
///   over the grid; `<total>` is the summed state count over all
///   points, so the row is a states-per-nanosecond throughput metric
///   like the exploration gates;
/// * `campaign/grid_cold_..._states<total>` — the same grid cold;
/// * `campaign/cache_hit_rate_per1000_states<hits>` — cache hits per
///   1000 points with `ns_per_iter` pinned at 1000, making the
///   "throughput" exactly the hit rate: a deterministic, machine-free
///   metric `bench_check` gates raw (no calibration row).
fn campaign_grid() -> Vec<BenchResult> {
    use ctsim_experiments::campaign::{run_with, CampaignOptions};
    let points = 16usize;
    let opts = CampaignOptions {
        ns: vec![2],
        ph_orders: vec![8],
        service_scales: (0..points).map(|i| 0.70 + 0.05 * i as f64).collect(),
        backends: vec![SolverBackend::Krylov],
        threads: 1,
        verify_cold: true,
        ..CampaignOptions::default()
    };
    let c = run_with(BENCH_SEED, &opts).expect("campaign grid");
    assert_eq!(c.rows.len(), points);
    let total_states: usize = c.rows.iter().map(|r| r.states).sum();
    let label = format!("paper_n2_order8_points{points}_states{total_states}");
    let hits_per_1000 = c.cache_hits * 1000 / c.rows.len() as u64;
    let rows = vec![
        BenchResult {
            name: format!("campaign/grid_warm_{label}"),
            ns_per_iter: c.campaign_point_ms() * 1e6,
            iters: points as u64,
            peak_bytes: None,
            meta: None,
        },
        BenchResult {
            name: format!("campaign/grid_cold_{label}"),
            ns_per_iter: c.cold_point_ms().expect("verify-cold run") * 1e6,
            iters: points as u64,
            peak_bytes: None,
            meta: None,
        },
        BenchResult {
            name: format!("campaign/cache_hit_rate_per1000_states{hits_per_1000}"),
            ns_per_iter: 1000.0,
            iters: points as u64,
            peak_bytes: None,
            meta: None,
        },
    ];
    for r in &rows {
        println!("timed {:<68} {:>14.0} ns/iter", r.name, r.ns_per_iter);
    }
    rows
}

/// Phase-type expansion: solve time vs order on the paper's real
/// (deterministic/bi-modal) n = 2 parameters.
fn ph_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("ph_expansion");
    g.sample_size(10);

    let params = SanParams::paper_baseline(2);
    let model = build_model(&params);
    let decided: Vec<_> = (0..2)
        .map(|i| model.place(&format!("decided_{i}")).unwrap())
        .collect();
    let goal = move |m: &Marking| decided.iter().any(|&d| m.get(d) > 0);

    for order in [1u32, 2, 4, 8] {
        let opts = SolveOptions::ph(order, 1);
        // Record the state count in the name so BENCH_solver.json
        // doubles as the growth table's data source.
        let states = AnalyticRun::first_passage_with(&model, &opts, &goal)
            .unwrap()
            .space()
            .len();
        g.bench_function(format!("paper_n2_order{order}_states{states}"), |b| {
            b.iter(|| {
                let run = AnalyticRun::first_passage_with(&model, &opts, &goal).unwrap();
                black_box(run.mean(&IterOptions::default()).unwrap().mean_ms)
            })
        });
    }
    g.finish();
}

/// Thread sweep over the lock-free concurrent intern table: full
/// exploration wall-clock at n = 2 and n = 3, self-timed (best of
/// `repeats` runs) so every mode — including the CI smoke run the
/// bench-regression gate consumes — yields a stable number. The state
/// count rides in the row name, turning each row into a throughput
/// metric (states per nanosecond) for `bench_check`.
fn concurrent_intern() -> Vec<BenchResult> {
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut rows = Vec::new();
    let mut sweep =
        |label: &str, params: SanParams, ph_order: u32, mut threads: Vec<usize>, repeats: u32| {
            threads.sort_unstable();
            threads.dedup();
            let model = build_model(&params);
            // The first-passage space of the latency workflow — the same
            // exploration `repro analytic` and the CI scalability gate run.
            let decided = decided_place_ids(&model, params.n);
            for t in threads {
                let opts = ReachOptions {
                    ph_order,
                    threads: t,
                    max_states: 4 << 20,
                    ..ReachOptions::default()
                };
                let mut best = f64::INFINITY;
                let mut peak = u64::MAX;
                let mut states = 0usize;
                for _ in 0..repeats {
                    alloc_counter::reset_peak();
                    let start = Instant::now();
                    let ss = StateSpace::explore_absorbing(&model, &opts, |m| {
                        decided.iter().any(|&d| m.get(d) > 0)
                    })
                    .unwrap();
                    states = black_box(ss.len());
                    best = best.min(start.elapsed().as_nanos() as f64);
                    // The workload is deterministic, so min-of-N peaks
                    // just sheds cross-run allocator noise.
                    peak = peak.min(alloc_counter::peak_bytes() as u64);
                }
                let name = format!("concurrent_intern/explore_{label}_threads{t}_states{states}");
                println!(
                    "timed {name:<68} {best:>14.0} ns/iter, peak {:.1} MB (best of {repeats})",
                    peak as f64 / (1 << 20) as f64
                );
                rows.push(BenchResult {
                    name,
                    ns_per_iter: best,
                    iters: u64::from(repeats),
                    peak_bytes: Some(peak),
                    meta: None,
                });
            }
        };
    // n = 2 order 4: a hundred-state space — measures the engine's
    // fixed costs (table setup, canonical renumber) at latency scale.
    sweep(
        "paper_n2_order4",
        SanParams::paper_baseline(2),
        4,
        vec![1, 8],
        50,
    );
    // n = 3 exponential (≈ 1.35 × 10⁵ states): the gated throughput
    // metric, plus the full 1/2/4/8 thread-scaling sweep of the
    // streaming exploration pipeline (`sweep` dedups the list).
    sweep(
        "exp_n3",
        SanParams::exponential_n3(),
        0,
        vec![1, 2, 4, 8, cores],
        2,
    );
    // n = 3 order 2 (≈ 5.3 × 10⁵ states): the scalability-gate
    // workload itself.
    sweep(
        "paper_n3_order2",
        SanParams::paper_n3(),
        2,
        vec![1, cores],
        1,
    );
    rows
}

/// The out-of-core pipeline on the n = 3 exponential first-passage
/// space (≈ 1.35 × 10⁵ states): full explore → CSR → Krylov mean,
/// once resident and once under an 8 MB spill budget with forced
/// external-memory dedup (delayed duplicate detection + the paged CSR
/// streamed through the sharded SpMV). Self-timed best-of-N like the
/// intern sweep. Both rows carry `peak_bytes`, so `bench_check` gates
/// two things at once: the spilled pipeline's throughput (the
/// sort-merge and pager overhead must stay bounded relative to the
/// resident leg) and — via the budgeted row's live-heap peak — that
/// the budget actually holds the bulk arrays out of RAM.
fn out_of_core() -> Vec<BenchResult> {
    let params = SanParams::exponential_n3();
    let model = build_model(&params);
    let decided = decided_place_ids(&model, params.n);
    let goal = |m: &Marking| decided.iter().any(|&d| m.get(d) > 0);
    let iter = IterOptions {
        backend: SolverBackend::Krylov,
        ..IterOptions::default()
    };
    let legs: [(&str, Option<SpillOptions>); 2] = [
        ("resident", None),
        (
            "ddd_spill8M",
            Some(SpillOptions::with_budget(8 << 20).dedup(DedupMode::External)),
        ),
    ];
    let repeats = 2u32;
    let mut rows = Vec::new();
    for (label, spill) in legs {
        let opts = ReachOptions {
            threads: 4,
            max_states: 4 << 20,
            spill: spill.clone(),
            ..ReachOptions::default()
        };
        let mut best = f64::INFINITY;
        let mut peak = u64::MAX;
        let mut states = 0usize;
        for _ in 0..repeats {
            alloc_counter::reset_peak();
            let start = Instant::now();
            let run = AnalyticRun::first_passage(&model, &opts, goal).unwrap();
            black_box(run.mean(&iter).unwrap().mean_ms);
            states = run.space().len();
            best = best.min(start.elapsed().as_nanos() as f64);
            peak = peak.min(alloc_counter::peak_bytes() as u64);
        }
        let name = format!("out_of_core/analytic_exp_n3_{label}_states{states}");
        println!(
            "timed {name:<68} {best:>14.0} ns/iter, peak {:.1} MB (best of {repeats})",
            peak as f64 / (1 << 20) as f64
        );
        rows.push(BenchResult {
            name,
            ns_per_iter: best,
            iters: u64::from(repeats),
            peak_bytes: Some(peak),
            meta: None,
        });
    }
    rows
}

/// Generator-representation SpMV throughput: the forward `Q v` product
/// — the hot loop of every absorption solve — on the n = 3 exponential
/// first-passage space (≈ 1.35 × 10⁵ states), once on the materialized
/// CSR matrix and once on the matrix-free Kronecker-factored
/// descriptor. Self-timed best-of-N like the intern sweep, state count
/// in the row name so each row is a states-per-nanosecond throughput
/// metric. The single-thread rows carry `peak_bytes` — the live-heap
/// peak of the *whole* explore-and-build-then-multiply pass — so
/// `bench_check` gates both the kron matvec speed and the descriptor's
/// memory headline (it must stay below the CSR run's peak: the forward
/// product never builds the kron transpose, and the descriptor packs
/// 8 B per entry against CSR's 16 B). Each row also carries a nested
/// `op` object in the results JSON (generator/product/threads), which
/// doubles as the regression fixture for `bench_check`'s
/// unknown-key-tolerant parser.
fn kron_matvec() -> Vec<BenchResult> {
    let params = SanParams::exponential_n3();
    let model = build_model(&params);
    let decided = decided_place_ids(&model, params.n);
    let opts = ReachOptions {
        ph_order: 0,
        threads: 0,
        max_states: 4 << 20,
        ..ReachOptions::default()
    };
    let mut rows = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    for backend in GeneratorBackend::ALL {
        alloc_counter::reset_peak();
        let (ss, gen) = StateSpace::explore_absorbing_gen(&model, &opts, backend, |m| {
            decided.iter().any(|&d| m.get(d) > 0)
        })
        .unwrap();
        let states = ss.len();
        drop(ss);
        let n = LinOp::dim(&gen);
        // A fixed, structured input so the product (and thus the
        // cross-representation agreement assert) is deterministic.
        let v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let mut y = vec![0.0; n];
        let repeats = 20u32;
        for t in [1usize, 8] {
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let start = Instant::now();
                gen.apply(&v, &mut y, t);
                black_box(&y[0]);
                best = best.min(start.elapsed().as_nanos() as f64);
            }
            // Peak rides on the threads-1 row only: it covers the
            // explore + generator build + first products high-water
            // mark, which the thread count does not change.
            let peak = (t == 1).then(|| alloc_counter::peak_bytes() as u64);
            let name = format!(
                "kron_matvec/apply_{}_exp_n3_threads{t}_states{states}",
                backend.name()
            );
            match peak {
                Some(p) => println!(
                    "timed {name:<68} {best:>14.0} ns/iter, peak {:.1} MB (best of {repeats})",
                    p as f64 / (1 << 20) as f64
                ),
                None => println!("timed {name:<68} {best:>14.0} ns/iter (best of {repeats})"),
            }
            rows.push(BenchResult {
                name,
                ns_per_iter: best,
                iters: u64::from(repeats),
                peak_bytes: peak,
                meta: Some(format!(
                    "{{ \"generator\": \"{}\", \"product\": \"flow\", \"threads\": {t} }}",
                    backend.name()
                )),
            });
        }
        // The two representations must agree on the product itself —
        // same contract the generator-agreement CI job gates end to
        // end, here at ULP scale since it is one multiply, not a solve.
        match &reference {
            None => reference = Some(y.clone()),
            Some(r) => {
                for (i, (&a, &b)) in r.iter().zip(&y).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                        "kron matvec diverges from csr at state {i}: {a} vs {b}"
                    );
                }
            }
        }
    }
    rows
}

/// Solve-phase wall-clock per linear-algebra backend: the
/// `Q_TT τ = -1` mean solve on the prebuilt n = 2 order-4 and n = 3
/// exponential first-passage CTMCs (exploration excluded — the
/// `concurrent_intern` group owns that). Self-timed best-of-N like the
/// intern sweep, with the state count in the row name so each row is a
/// solve-throughput metric; `bench_check` gates the n = 3 single-thread
/// rows of every backend against `ci/bench_baseline.json`.
fn solver_backends() -> Vec<BenchResult> {
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut rows = Vec::new();
    let mut sweep = |label: &str, params: SanParams, ph_order: u32, repeats: u32| {
        let model = build_model(&params);
        let decided = decided_place_ids(&model, params.n);
        let opts = ReachOptions {
            ph_order,
            threads: 0,
            max_states: 4 << 20,
            ..ReachOptions::default()
        };
        // One exploration, shared by every backend timing.
        let run =
            AnalyticRun::first_passage(&model, &opts, |m| decided.iter().any(|&d| m.get(d) > 0))
                .unwrap();
        let states = run.space().len();
        let mut reference = f64::NAN;
        for backend in SolverBackend::ALL {
            // Gauss–Seidel is sequential by construction; sweep the
            // SpMV shard count only for the parallel backends.
            let mut threads = if backend == SolverBackend::GaussSeidel {
                vec![1]
            } else {
                vec![1, cores]
            };
            threads.dedup();
            for &t in &threads {
                let iter = IterOptions::with_backend(backend, t);
                let mut best = f64::INFINITY;
                let mut mean = f64::NAN;
                for _ in 0..repeats {
                    let start = Instant::now();
                    mean = black_box(run.mean(&iter).unwrap().mean_ms);
                    best = best.min(start.elapsed().as_nanos() as f64);
                }
                if reference.is_nan() {
                    reference = mean;
                }
                // The documented cross-backend contract (and the CI
                // agreement matrix) gate at 1e-6 relative; assert the
                // same bound here, not a tighter one.
                assert!(
                    (mean - reference).abs() <= 1e-6 * reference.abs(),
                    "{backend} diverges from the reference mean: {mean} vs {reference}"
                );
                let name = format!(
                    "solver_backends/solve_{label}_{}_threads{t}_states{states}",
                    backend.slug()
                );
                println!("timed {name:<68} {best:>14.0} ns/iter (best of {repeats})");
                rows.push(BenchResult {
                    name,
                    ns_per_iter: best,
                    iters: u64::from(repeats),
                    peak_bytes: None,
                    meta: None,
                });
            }
        }
    };
    // n = 2 order 4: backend fixed costs at latency scale.
    sweep("paper_n2_order4", SanParams::paper_baseline(2), 4, 20);
    // n = 3 exponential (≈ 1.35 × 10⁵ states): the gated solve-phase
    // throughput metric, one row per backend.
    sweep("exp_n3", SanParams::exponential_n3(), 0, 2);
    rows
}

/// Appends every measurement of this run — the criterion-driven groups
/// plus the self-timed `concurrent_intern` and `solver_backends` rows
/// — to
/// `BENCH_solver.json` at the workspace root (overwritten each run; CI
/// uploads it as an artifact and gates it with `bench_check`).
fn write_results_json(c: &Criterion, extra: &[BenchResult]) {
    let mut body = String::from("{\n  \"bench\": \"solver_vs_sim\",\n");
    body.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if c.is_full() { "bench" } else { "smoke" }
    ));
    // The host the numbers were taken on: throughput rows are only
    // comparable against a baseline from similar hardware, so the gate
    // artifacts carry the machine shape alongside the measurements.
    let host = ctsim_obs::host_info();
    body.push_str(&format!(
        "  \"host\": {{ \"logical_cores\": {}, \"page_size_bytes\": {}, \"total_ram_bytes\": {} }},\n",
        host.logical_cores, host.page_size_bytes, host.total_ram_bytes
    ));
    body.push_str("  \"results\": [\n");
    let rows: Vec<String> = c
        .results()
        .iter()
        .chain(extra)
        .map(|r| {
            let peak = r
                .peak_bytes
                .map_or(String::new(), |p| format!(", \"peak_bytes\": {p}"));
            match &r.meta {
                // Rows with structured context render multi-line with a
                // nested `op` object — consumers must parse the results
                // array structurally, not line by line.
                Some(meta) => format!(
                    "    {{\n      \"name\": \"{}\",\n      \"ns_per_iter\": {:.1},\n      \
                     \"iters\": {}{peak},\n      \"op\": {meta}\n    }}",
                    r.name, r.ns_per_iter, r.iters
                ),
                None => format!(
                    "    {{ \"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}{peak} }}",
                    r.name, r.ns_per_iter, r.iters
                ),
            }
        })
        .collect();
    body.push_str(&rows.join(",\n"));
    body.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
