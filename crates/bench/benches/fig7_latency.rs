//! Regenerates Fig. 7 / §5.2 (class-1 latency) as benchmarks: the
//! measurement campaign and the SAN simulation that must match it.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_models::{latency_replications, SanParams};
use ctsim_testbed::{run_campaign, TestbedConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for n in [3usize, 5] {
        g.bench_function(format!("measured_campaign_n{n}_60exec"), |b| {
            b.iter(|| {
                let r = run_campaign(&TestbedConfig::class1(n, 60, black_box(BENCH_SEED)));
                black_box(r.mean())
            })
        });
        g.bench_function(format!("san_simulation_n{n}_100reps"), |b| {
            let params = SanParams::paper_baseline(n);
            b.iter(|| {
                let r = latency_replications(&params, 100, black_box(BENCH_SEED), 1e4);
                black_box(r.mean())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
