//! Regenerates Fig. 8 (failure-detector QoS vs timeout) as benchmarks:
//! one class-3 campaign with QoS estimation per timeout setting.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_testbed::{run_campaign, TestbedConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for timeout in [3.0f64, 30.0, 100.0] {
        g.bench_function(format!("qos_campaign_n3_T{timeout}"), |b| {
            b.iter(|| {
                let cfg = TestbedConfig::class3(3, 40, timeout, black_box(BENCH_SEED));
                let r = run_campaign(&cfg);
                black_box(r.qos.expect("class 3 yields QoS").t_mr)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
