//! Regenerates Table 1 (crash scenarios) as benchmarks: measured and
//! simulated latency under no crash / coordinator crash / participant
//! crash.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_models::{latency_replications, SanParams};
use ctsim_testbed::{run_campaign, CrashScenario, TestbedConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for (name, scenario) in [
        ("no_crash", CrashScenario::None),
        ("coordinator_crash", CrashScenario::Coordinator),
        ("participant_crash", CrashScenario::Participant),
    ] {
        g.bench_function(format!("measured_n3_{name}"), |b| {
            b.iter(|| {
                let cfg = TestbedConfig::class2(3, 60, scenario, black_box(BENCH_SEED));
                black_box(run_campaign(&cfg).mean())
            })
        });
        g.bench_function(format!("simulated_n3_{name}"), |b| {
            let mut params = SanParams::paper_baseline(3);
            if let Some(i) = scenario.crashed_index() {
                params = params.with_crash(i);
            }
            b.iter(|| {
                black_box(latency_replications(&params, 80, black_box(BENCH_SEED), 1e4).mean())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
