//! Regenerates Fig. 9 (latency vs failure-detection timeout) as
//! benchmarks: the class-3 measurement and the SAN model with the
//! two-state failure detector (deterministic and exponential).

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_models::{latency_replications, SanParams, SojournDist};
use ctsim_testbed::{run_campaign, TestbedConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for timeout in [3.0f64, 30.0] {
        g.bench_function(format!("measured_latency_n3_T{timeout}"), |b| {
            b.iter(|| {
                let cfg = TestbedConfig::class3(3, 40, timeout, black_box(BENCH_SEED));
                black_box(run_campaign(&cfg).mean())
            })
        });
    }
    for (name, dist) in [
        ("det", SojournDist::Deterministic),
        ("exp", SojournDist::Exponential),
    ] {
        g.bench_function(format!("san_two_state_fd_{name}_n3"), |b| {
            let params = SanParams::paper_baseline(3).with_two_state_fd(15.0, 5.0, dist);
            b.iter(|| {
                black_box(latency_replications(&params, 60, black_box(BENCH_SEED), 6e4).mean())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
