//! Microbenchmarks of the substrates: the DES event queue, the SAN
//! simulation engine, and the cluster runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_des::{EventQueue, SimTime};
use ctsim_models::{build_model, SanParams};
use ctsim_san::{Simulator, StopReason};
use ctsim_stoch::{Dist, SimRng};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("des/event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..10_000u32 {
                q.schedule_at(
                    SimTime::from_nanos(((i * 2_654_435_761) % 1_000_000) as u64),
                    i,
                );
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e as u64);
            }
            black_box(acc)
        })
    });
}

fn bench_san_engine(c: &mut Criterion) {
    // A closed tandem queueing network exercises enabling, scheduling,
    // and firing without protocol logic.
    let mut b = ctsim_san::SanBuilder::new("tandem");
    let stations = 8;
    let places: Vec<_> = (0..stations)
        .map(|i| b.place(format!("s{i}"), if i == 0 { 20 } else { 0 }))
        .collect();
    for i in 0..stations {
        let from = places[i];
        let to = places[(i + 1) % stations];
        b.add_activity(
            ctsim_san::Activity::timed(format!("t{i}"), Dist::Exp { mean: 1.0 })
                .input(from, 1)
                .case(ctsim_san::Case::with_prob(1.0).output(to, 1)),
        );
    }
    let model = b.build().unwrap();
    c.bench_function("san/tandem_8x20_to_1s", |bch| {
        bch.iter(|| {
            let mut sim = Simulator::new(&model, SimRng::new(7));
            let out = sim.run_until(|_| false, SimTime::from_secs(1.0));
            black_box(out.completions)
        })
    });

    let params = SanParams::paper_baseline(5);
    let consensus = build_model(&params);
    let decided: Vec<_> = (0..5)
        .map(|i| consensus.place(&format!("decided_{i}")).unwrap())
        .collect();
    c.bench_function("san/consensus_model_n5_one_run", |bch| {
        let mut seed = 0u64;
        bch.iter(|| {
            seed += 1;
            let mut sim = Simulator::new(&consensus, SimRng::new(seed));
            let out = sim.run_until(
                |m| decided.iter().any(|&d| m.get(d) > 0),
                SimTime::from_secs(10.0),
            );
            assert_eq!(out.reason, StopReason::Predicate);
            black_box(out.time)
        })
    });

    c.bench_function("san/build_consensus_model_n5", |bch| {
        bch.iter(|| black_box(build_model(&params)).num_activities())
    });
}

criterion_group!(benches, bench_event_queue, bench_san_engine);
criterion_main!(benches);
