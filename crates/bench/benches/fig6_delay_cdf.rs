//! Regenerates Fig. 6 (end-to-end delay CDFs and bimodal fit) as a
//! benchmark: one iteration = one full delay-measurement campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use ctsim_bench::BENCH_SEED;
use ctsim_netsim::{HostParams, NetParams};
use ctsim_stoch::fit::fit_bimodal_uniform;
use ctsim_testbed::measure_delays;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("delay_campaign_n3_400pings", |b| {
        b.iter(|| {
            let d = measure_delays(
                3,
                400,
                NetParams::default(),
                HostParams::default(),
                black_box(BENCH_SEED),
            );
            black_box(d.unicast.mean())
        })
    });
    g.bench_function("bimodal_fit_2000_samples", |b| {
        let d = measure_delays(3, 1000, NetParams::default(), HostParams::default(), 1);
        b.iter(|| black_box(fit_bimodal_uniform(black_box(d.unicast.samples()))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
