//! `bench_check` — the CI bench-regression gate.
//!
//! Compares the exploration- and solve-phase throughput metrics of a
//! fresh `BENCH_solver.json` (produced by the `solver_vs_sim` bench,
//! smoke mode included) against the committed baseline
//! `ci/bench_baseline.json`, and fails on a regression beyond the
//! allowed fraction (default 25 %).
//!
//! ```text
//! bench_check <current.json> <baseline.json> [--max-regression 0.25]
//! ```
//!
//! Raw nanoseconds are machine-bound, so every gate compares a
//! **normalised** throughput: the workload's states-per-nanosecond,
//! multiplied by the per-replication cost of the simulator campaign
//! from the same run. The simulator work is a fixed, allocation-light
//! workload whose wall-clock tracks the host's general speed, so the
//! ratio cancels runner-to-runner variation to first order and
//! isolates *relative* regressions of the gated phase. Gated metrics:
//!
//! * **exploration** — single-thread first-passage exploration of the
//!   n = 3 exponential model over the concurrent intern table (the
//!   PR 3 gate);
//! * **solve (per backend)** — the single-thread `Q_TT τ = -1` mean
//!   solve on the same n = 3 CTMC, one gate per linear-algebra
//!   backend, so a regression in any of Gauss–Seidel, Jacobi, or
//!   Krylov fails CI even while the others stay fast;
//! * **matvec (per generator)** — the single-thread forward `Q v`
//!   product on the same n = 3 space, once on the materialized CSR
//!   matrix and once on the matrix-free Kronecker descriptor, plus a
//!   peak-heap gate pinning the descriptor's memory headline;
//! * **out-of-core analytic** — the full explore → CSR → Krylov-mean
//!   pipeline on the same n = 3 space under an 8 MB spill budget with
//!   external-memory dedup, plus a peak-heap gate on the spilled leg
//!   proving the budget keeps the bulk arrays out of RAM.
//!
//! Both files must come from the same bench code for names to line up.

use std::process::ExitCode;

/// The gated workloads: display label and row-name prefix (the state
/// count follows the prefix in the row name).
const GATES: &[(&str, &str)] = &[
    (
        "explore",
        "concurrent_intern/explore_exp_n3_threads1_states",
    ),
    (
        "solve/gauss-seidel",
        "solver_backends/solve_exp_n3_gauss_seidel_threads1_states",
    ),
    (
        "solve/jacobi",
        "solver_backends/solve_exp_n3_jacobi_threads1_states",
    ),
    (
        "solve/krylov",
        "solver_backends/solve_exp_n3_krylov_threads1_states",
    ),
    (
        "ooc/analytic-spilled",
        "out_of_core/analytic_exp_n3_ddd_spill8M_states",
    ),
    ("matvec/csr", "kron_matvec/apply_csr_exp_n3_threads1_states"),
    (
        "matvec/kron",
        "kron_matvec/apply_kron_exp_n3_threads1_states",
    ),
    (
        "campaign/warm-grid",
        "campaign/grid_warm_paper_n2_order8_points16_states",
    ),
    (
        "campaign/cold-grid",
        "campaign/grid_cold_paper_n2_order8_points16_states",
    ),
];

/// Raw-throughput gates: workloads whose states-per-nanosecond figure
/// is machine-independent by construction (the `campaign` hit-rate row
/// pins `ns_per_iter` at 1000 and encodes hits-per-1000-points as its
/// state count), so they gate without the simulator calibration.
const RAW_GATES: &[(&str, &str)] = &[(
    "campaign hit-rate",
    "campaign/cache_hit_rate_per1000_states",
)];

/// The peak-memory gates: rows whose `peak_bytes` (exact live-heap
/// peak from the bench's counting allocator) must not regress beyond
/// the allowed fraction. Unlike wall-clock, peak bytes of a
/// deterministic workload are machine-independent, so the gate
/// compares raw bytes without the throughput normalisation.
const MEM_GATES: &[(&str, &str)] = &[
    (
        "explore peak-mem",
        "concurrent_intern/explore_exp_n3_threads1_states",
    ),
    (
        "kron matvec peak-mem",
        "kron_matvec/apply_kron_exp_n3_threads1_states",
    ),
    (
        "ooc spilled peak-mem",
        "out_of_core/analytic_exp_n3_ddd_spill8M_states",
    ),
];

/// The calibration workload: the simulator replication campaign, whose
/// name carries its replication count as `..._x<reps>`.
const CALIBRATE_PREFIX: &str = "solver_vs_sim/simulator_n2_replications_for_1pct_ci_x";

struct Row {
    name: String,
    ns_per_iter: f64,
    peak_bytes: Option<f64>,
}

/// Index just past the closing quote of the string starting at `at`
/// (which must point at the opening `"`). `\"` escapes are honoured.
fn end_of_string(text: &str, at: usize) -> usize {
    let bytes = text.as_bytes();
    let mut i = at + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Index just past the bracket matching the `{` or `[` at `start`,
/// string-aware so braces inside quoted values don't count.
fn end_of_balanced(text: &str, start: usize) -> usize {
    let bytes = text.as_bytes();
    let (open, close) = if bytes[start] == b'{' {
        (b'{', b'}')
    } else {
        (b'[', b']')
    };
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'"' {
            i = end_of_string(text, i);
            continue;
        }
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Index just past the JSON value starting at `at`: a string, a nested
/// object/array (skipped wholesale), or a bare scalar (read up to the
/// enclosing `,`/`}`/`]`).
fn end_of_value(text: &str, at: usize) -> usize {
    match text.as_bytes()[at] {
        b'"' => end_of_string(text, at),
        b'{' | b'[' => end_of_balanced(text, at),
        _ => text[at..]
            .find([',', '}', ']'])
            .map_or(text.len(), |off| at + off),
    }
}

/// One measurement row from the body of a results-array object
/// (`body` excludes the outer braces). Only the row's *own* `name` /
/// `ns_per_iter` / `peak_bytes` fields count — keys inside nested
/// objects (e.g. a row's `op` context) are skipped with their values,
/// and unknown keys of any shape are ignored.
fn row_from_object(body: &str) -> Option<Row> {
    let bytes = body.as_bytes();
    let (mut name, mut ns, mut peak) = (None, None, None);
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let key_end = end_of_string(body, i);
        let key = &body[i + 1..key_end - 1];
        let Some(colon_off) = body[key_end..].find(|c: char| !c.is_whitespace()) else {
            break;
        };
        if bytes[key_end + colon_off] != b':' {
            i = key_end;
            continue;
        }
        let Some(val_off) = body[key_end + colon_off + 1..].find(|c: char| !c.is_whitespace())
        else {
            break;
        };
        let val_at = key_end + colon_off + 1 + val_off;
        let val_end = end_of_value(body, val_at);
        let raw = body[val_at..val_end].trim();
        match key {
            "name" => name = raw.strip_prefix('"')?.strip_suffix('"').map(String::from),
            "ns_per_iter" => ns = raw.parse::<f64>().ok(),
            "peak_bytes" => peak = raw.parse::<f64>().ok(),
            _ => {}
        }
        i = val_end;
    }
    Some(Row {
        name: name?,
        ns_per_iter: ns?,
        peak_bytes: peak,
    })
}

/// Extracts the measurement rows from the `"results"` array of a bench
/// JSON document (the workspace builds offline — no JSON crate — and
/// the format is ours end to end). The scan is structural, not
/// line-based: rows may span lines, nest objects (the `op` context of
/// the `kron_matvec` rows), or carry unknown keys, and anything that
/// lacks a `name` + `ns_per_iter` of its own is skipped.
fn parse_rows(text: &str) -> Vec<Row> {
    let Some(results_at) = text.find("\"results\"") else {
        return Vec::new();
    };
    let Some(array_at) = text[results_at..].find('[').map(|off| results_at + off) else {
        return Vec::new();
    };
    let array_end = end_of_balanced(text, array_at);
    let mut rows = Vec::new();
    let bytes = text.as_bytes();
    let mut i = array_at + 1;
    while i < array_end {
        if bytes[i] == b'{' {
            let end = end_of_balanced(text, i);
            if let Some(row) = row_from_object(&text[i + 1..end - 1]) {
                rows.push(row);
            }
            i = end;
        } else {
            i += 1;
        }
    }
    rows
}

/// Peak live-heap bytes of the row matching `prefix`, if recorded.
fn peak_of(rows: &[Row], prefix: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.name.starts_with(prefix))
        .and_then(|r| r.peak_bytes)
}

/// States-per-nanosecond of the row matching `prefix` (state count is
/// embedded in the row name).
fn throughput(rows: &[Row], prefix: &str) -> Option<f64> {
    let row = rows.iter().find(|r| r.name.starts_with(prefix))?;
    let states: f64 = row.name[prefix.len()..].parse().ok()?;
    (row.ns_per_iter > 0.0).then(|| states / row.ns_per_iter)
}

/// Nanoseconds per simulator replication (the machine-speed yardstick).
fn ns_per_replication(rows: &[Row]) -> Option<f64> {
    let row = rows.iter().find(|r| r.name.starts_with(CALIBRATE_PREFIX))?;
    let reps: f64 = row.name[CALIBRATE_PREFIX.len()..].parse().ok()?;
    (reps > 0.0).then(|| row.ns_per_iter / reps)
}

/// The normalised throughput of one gated workload in one results
/// file: states processed per unit of "one simulator replication" of
/// work.
fn normalised(rows: &[Row], prefix: &str) -> Result<f64, String> {
    let tp = throughput(rows, prefix)
        .ok_or_else(|| format!("no `{prefix}*` row (did the bench run?)"))?;
    let cal = ns_per_replication(rows)
        .ok_or_else(|| format!("no `{CALIBRATE_PREFIX}*` calibration row"))?;
    Ok(tp * cal)
}

/// One-line failure report for a gated metric: the percentage delta
/// *and* the baseline-vs-measured values, so the CI log names the
/// offending numbers without anyone opening the artifacts.
fn failure_line(what: &str, base: f64, cur: f64, delta_pct: f64, allowed_pct: f64) -> String {
    format!(
        "{what} regressed {delta_pct:.1}% (allowed {allowed_pct:.0}%): \
         baseline {base:.4} vs measured {cur:.4}"
    )
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut current, mut baseline, mut max_regression) = (None, None, 0.25f64);
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            max_regression = it
                .next()
                .ok_or("missing value for --max-regression")?
                .parse::<f64>()
                .map_err(|e| e.to_string())?;
        } else if current.is_none() {
            current = Some(a);
        } else if baseline.is_none() {
            baseline = Some(a);
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let usage = "usage: bench_check <current.json> <baseline.json> [--max-regression 0.25]";
    let current = current.ok_or(usage)?;
    let baseline = baseline.ok_or(usage)?;

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let cur_rows = parse_rows(&read(&current)?);
    let base_rows = parse_rows(&read(&baseline)?);

    let mut failures = Vec::new();
    println!("normalised throughput (states per simulator-replication of work):");
    for &(label, prefix) in GATES {
        let cur = normalised(&cur_rows, prefix).map_err(|e| format!("{current}: {e}"))?;
        let base = normalised(&base_rows, prefix).map_err(|e| format!("{baseline}: {e}"))?;
        let ratio = cur / base;
        println!(
            "  {label:<20} baseline {base:>10.4}  current {cur:>10.4}  ratio {ratio:.3}  \
             (gate: >= {:.3})",
            1.0 - max_regression
        );
        if ratio < 1.0 - max_regression {
            failures.push(failure_line(
                &format!("{label} throughput"),
                base,
                cur,
                (1.0 - ratio) * 100.0,
                max_regression * 100.0,
            ));
        }
    }
    println!("raw throughput (machine-independent by construction):");
    for &(label, prefix) in RAW_GATES {
        let cur = throughput(&cur_rows, prefix)
            .ok_or_else(|| format!("{current}: no `{prefix}*` row (did the bench run?)"))?;
        let base = throughput(&base_rows, prefix)
            .ok_or_else(|| format!("{baseline}: no `{prefix}*` row"))?;
        let ratio = cur / base;
        println!(
            "  {label:<20} baseline {base:>10.4}  current {cur:>10.4}  ratio {ratio:.3}  \
             (gate: >= {:.3})",
            1.0 - max_regression
        );
        if ratio < 1.0 - max_regression {
            failures.push(failure_line(
                &format!("{label} throughput"),
                base,
                cur,
                (1.0 - ratio) * 100.0,
                max_regression * 100.0,
            ));
        }
    }
    println!("peak live-heap (bytes, exact allocator count — lower is better):");
    for &(label, prefix) in MEM_GATES {
        let cur = peak_of(&cur_rows, prefix)
            .ok_or_else(|| format!("{current}: no `{prefix}*` peak_bytes (did the bench run?)"))?;
        let base = peak_of(&base_rows, prefix)
            .ok_or_else(|| format!("{baseline}: no `{prefix}*` peak_bytes"))?;
        let ratio = cur / base;
        println!(
            "  {label:<20} baseline {base:>13.0}  current {cur:>13.0}  ratio {ratio:.3}  \
             (gate: <= {:.3})",
            1.0 + max_regression
        );
        if ratio > 1.0 + max_regression {
            failures.push(failure_line(
                label,
                base,
                cur,
                (ratio - 1.0) * 100.0,
                max_regression * 100.0,
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "solver_vs_sim",
  "mode": "smoke",
  "host": { "logical_cores": 16, "page_size_bytes": 4096, "total_ram_bytes": 67108864000 },
  "results": [
    { "name": "solver_vs_sim/simulator_n2_replications_for_1pct_ci_x2500", "ns_per_iter": 25000000.0, "iters": 1 },
    { "name": "concurrent_intern/explore_exp_n3_threads1_states135125", "ns_per_iter": 700000000.0, "iters": 2, "peak_bytes": 104857600 },
    { "name": "solver_backends/solve_exp_n3_gauss_seidel_threads1_states135125", "ns_per_iter": 90000000.0, "iters": 2 },
    { "name": "solver_backends/solve_exp_n3_jacobi_threads1_states135125", "ns_per_iter": 150000000.0, "iters": 2 },
    { "name": "solver_backends/solve_exp_n3_krylov_threads1_states135125", "ns_per_iter": 60000000.0, "iters": 2 },
    {
      "name": "kron_matvec/apply_csr_exp_n3_threads1_states135125",
      "ns_per_iter": 500000.0,
      "iters": 20, "peak_bytes": 52428800,
      "op": { "generator": "csr", "product": "flow", "threads": 1 }
    },
    {
      "name": "kron_matvec/apply_kron_exp_n3_threads1_states135125",
      "ns_per_iter": 400000.0,
      "iters": 20, "peak_bytes": 31457280,
      "op": { "generator": "kron", "product": "flow", "threads": 1 }
    },
    { "name": "out_of_core/analytic_exp_n3_ddd_spill8M_states135125", "ns_per_iter": 650000000.0, "iters": 2, "peak_bytes": 37748736 },
    { "name": "campaign/grid_warm_paper_n2_order8_points16_states4272", "ns_per_iter": 40000000.0, "iters": 16 },
    { "name": "campaign/grid_cold_paper_n2_order8_points16_states4272", "ns_per_iter": 160000000.0, "iters": 16 },
    { "name": "campaign/cache_hit_rate_per1000_states937", "ns_per_iter": 1000.0, "iters": 16 }
  ]
}"#;

    #[test]
    fn parses_and_normalises_every_gate() {
        let rows = parse_rows(SAMPLE);
        // The host-info object sits outside the results array, so it
        // never becomes a measurement row.
        assert_eq!(rows.len(), 11);
        let cal = ns_per_replication(&rows).unwrap();
        assert!((cal - 10000.0).abs() < 1e-9);
        for &(label, prefix) in GATES {
            let tp = throughput(&rows, prefix).unwrap_or_else(|| panic!("no row for {label}"));
            assert!(tp > 0.0, "{label}");
            let norm = normalised(&rows, prefix).unwrap();
            assert!((norm - tp * cal).abs() < 1e-12, "{label}");
        }
        // Spot-check one: the explore gate.
        let tp = throughput(&rows, GATES[0].1).unwrap();
        assert!((tp - 135125.0 / 7e8).abs() < 1e-12);
    }

    #[test]
    fn raw_gates_skip_the_calibration_row() {
        let rows = parse_rows(SAMPLE);
        // The hit-rate row encodes hits-per-1000-points as its state
        // count over a pinned ns_per_iter of 1000, so its raw
        // throughput IS the hit rate — no simulator normalisation.
        let (_, prefix) = RAW_GATES[0];
        let rate = throughput(&rows, prefix).unwrap();
        assert!((rate - 0.937).abs() < 1e-12, "hit rate {rate}");
    }

    #[test]
    fn peak_bytes_are_parsed_and_optional() {
        let rows = parse_rows(SAMPLE);
        let peak = peak_of(&rows, MEM_GATES[0].1).expect("explore row carries peak_bytes");
        assert!((peak - 104857600.0).abs() < 1e-6);
        // Rows without the field simply report no peak.
        assert_eq!(
            peak_of(&rows, "solver_backends/solve_exp_n3_gauss_seidel"),
            None
        );
    }

    #[test]
    fn multiline_rows_with_nested_objects_parse_structurally() {
        // The kron_matvec rows span several lines and nest an `op`
        // object; a line-based scan would drop them (no `ns_per_iter`
        // on the `name` line) or mis-read the nested keys.
        let rows = parse_rows(SAMPLE);
        let kron = rows
            .iter()
            .find(|r| r.name.starts_with("kron_matvec/apply_kron_"))
            .expect("multi-line row parsed");
        assert_eq!(
            kron.name,
            "kron_matvec/apply_kron_exp_n3_threads1_states135125"
        );
        assert!((kron.ns_per_iter - 400000.0).abs() < 1e-9);
        assert_eq!(kron.peak_bytes, Some(31457280.0));
        // No phantom row from the nested object's own keys.
        assert!(rows.iter().all(|r| !r.name.contains("generator")));
    }

    #[test]
    fn unknown_and_nested_keys_inside_rows_are_ignored() {
        // Future bench groups may attach arbitrary context — including
        // a nested object that itself has a "name" or "ns_per_iter"
        // key. Only the row's own fields may count.
        let doc = r#"{
  "results": [
    {
      "op": { "name": "inner", "ns_per_iter": 1.0, "peak_bytes": 7 },
      "name": "grp/row_states100",
      "annotations": ["a", "b}c"],
      "ns_per_iter": 2000.0,
      "iters": 3
    },
    { "comment": "no measurement fields at all" }
  ]
}"#;
        let rows = parse_rows(doc);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "grp/row_states100");
        assert!((rows[0].ns_per_iter - 2000.0).abs() < 1e-9);
        assert_eq!(rows[0].peak_bytes, None);
    }

    #[test]
    fn committed_baseline_satisfies_every_gate_prefix() {
        // The baseline the CI gate diffs against must resolve every
        // gated prefix — a drive-by rename of a bench row would
        // otherwise only surface on the next full CI run.
        let baseline = include_str!("../../../../ci/bench_baseline.json");
        let rows = parse_rows(baseline);
        for &(label, prefix) in GATES {
            assert!(normalised(&rows, prefix).is_ok(), "gate {label}");
        }
        for &(label, prefix) in RAW_GATES {
            assert!(throughput(&rows, prefix).is_some(), "raw gate {label}");
        }
        for &(label, prefix) in MEM_GATES {
            assert!(peak_of(&rows, prefix).is_some(), "mem gate {label}");
        }
    }

    #[test]
    fn failure_line_names_baseline_measured_and_delta_in_one_line() {
        let line = failure_line("explore throughput", 2.0, 1.0, 50.0, 25.0);
        assert_eq!(
            line,
            "explore throughput regressed 50.0% (allowed 25%): \
             baseline 2.0000 vs measured 1.0000"
        );
        assert!(!line.contains('\n'), "must stay a single log line");
    }

    #[test]
    fn missing_rows_are_reported() {
        let rows = parse_rows("{}");
        for &(_, prefix) in GATES {
            assert!(normalised(&rows, prefix).is_err());
        }
    }
}
