//! `bench_check` — the CI bench-regression gate.
//!
//! Compares the exploration- and solve-phase throughput metrics of a
//! fresh `BENCH_solver.json` (produced by the `solver_vs_sim` bench,
//! smoke mode included) against the committed baseline
//! `ci/bench_baseline.json`, and fails on a regression beyond the
//! allowed fraction (default 25 %).
//!
//! ```text
//! bench_check <current.json> <baseline.json> [--max-regression 0.25]
//! ```
//!
//! Raw nanoseconds are machine-bound, so every gate compares a
//! **normalised** throughput: the workload's states-per-nanosecond,
//! multiplied by the per-replication cost of the simulator campaign
//! from the same run. The simulator work is a fixed, allocation-light
//! workload whose wall-clock tracks the host's general speed, so the
//! ratio cancels runner-to-runner variation to first order and
//! isolates *relative* regressions of the gated phase. Gated metrics:
//!
//! * **exploration** — single-thread first-passage exploration of the
//!   n = 3 exponential model over the concurrent intern table (the
//!   PR 3 gate);
//! * **solve (per backend)** — the single-thread `Q_TT τ = -1` mean
//!   solve on the same n = 3 CTMC, one gate per linear-algebra
//!   backend, so a regression in any of Gauss–Seidel, Jacobi, or
//!   Krylov fails CI even while the others stay fast.
//!
//! Both files must come from the same bench code for names to line up.

use std::process::ExitCode;

/// The gated workloads: display label and row-name prefix (the state
/// count follows the prefix in the row name).
const GATES: &[(&str, &str)] = &[
    (
        "explore",
        "concurrent_intern/explore_exp_n3_threads1_states",
    ),
    (
        "solve/gauss-seidel",
        "solver_backends/solve_exp_n3_gauss_seidel_threads1_states",
    ),
    (
        "solve/jacobi",
        "solver_backends/solve_exp_n3_jacobi_threads1_states",
    ),
    (
        "solve/krylov",
        "solver_backends/solve_exp_n3_krylov_threads1_states",
    ),
    (
        "campaign/warm-grid",
        "campaign/grid_warm_paper_n2_order8_points16_states",
    ),
    (
        "campaign/cold-grid",
        "campaign/grid_cold_paper_n2_order8_points16_states",
    ),
];

/// Raw-throughput gates: workloads whose states-per-nanosecond figure
/// is machine-independent by construction (the `campaign` hit-rate row
/// pins `ns_per_iter` at 1000 and encodes hits-per-1000-points as its
/// state count), so they gate without the simulator calibration.
const RAW_GATES: &[(&str, &str)] = &[(
    "campaign hit-rate",
    "campaign/cache_hit_rate_per1000_states",
)];

/// The peak-memory gates: rows whose `peak_bytes` (exact live-heap
/// peak from the bench's counting allocator) must not regress beyond
/// the allowed fraction. Unlike wall-clock, peak bytes of a
/// deterministic workload are machine-independent, so the gate
/// compares raw bytes without the throughput normalisation.
const MEM_GATES: &[(&str, &str)] = &[(
    "explore peak-mem",
    "concurrent_intern/explore_exp_n3_threads1_states",
)];

/// The calibration workload: the simulator replication campaign, whose
/// name carries its replication count as `..._x<reps>`.
const CALIBRATE_PREFIX: &str = "solver_vs_sim/simulator_n2_replications_for_1pct_ci_x";

struct Row {
    name: String,
    ns_per_iter: f64,
    peak_bytes: Option<f64>,
}

/// Minimal extractor for the flat `{ "name": ..., "ns_per_iter": ... }`
/// rows our bench writer emits (the workspace builds offline — no JSON
/// crate — and the format is ours end to end).
fn parse_rows(text: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\":") else {
            continue;
        };
        let rest = &line[name_at + 7..];
        let Some(open) = rest.find('"') else { continue };
        let Some(close) = rest[open + 1..].find('"') else {
            continue;
        };
        let name = rest[open + 1..open + 1 + close].to_string();
        let Some(ns_at) = line.find("\"ns_per_iter\":") else {
            continue;
        };
        let tail = line[ns_at + 14..]
            .trim_start()
            .trim_end_matches(['}', ',', ' '].as_ref());
        let ns: f64 = match tail.split(',').next().unwrap_or("").trim().parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        let peak_bytes = line.find("\"peak_bytes\":").and_then(|at| {
            line[at + 13..]
                .trim_start()
                .trim_end_matches(['}', ',', ' '].as_ref())
                .split(',')
                .next()
                .unwrap_or("")
                .trim()
                .parse::<f64>()
                .ok()
        });
        rows.push(Row {
            name,
            ns_per_iter: ns,
            peak_bytes,
        });
    }
    rows
}

/// Peak live-heap bytes of the row matching `prefix`, if recorded.
fn peak_of(rows: &[Row], prefix: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.name.starts_with(prefix))
        .and_then(|r| r.peak_bytes)
}

/// States-per-nanosecond of the row matching `prefix` (state count is
/// embedded in the row name).
fn throughput(rows: &[Row], prefix: &str) -> Option<f64> {
    let row = rows.iter().find(|r| r.name.starts_with(prefix))?;
    let states: f64 = row.name[prefix.len()..].parse().ok()?;
    (row.ns_per_iter > 0.0).then(|| states / row.ns_per_iter)
}

/// Nanoseconds per simulator replication (the machine-speed yardstick).
fn ns_per_replication(rows: &[Row]) -> Option<f64> {
    let row = rows.iter().find(|r| r.name.starts_with(CALIBRATE_PREFIX))?;
    let reps: f64 = row.name[CALIBRATE_PREFIX.len()..].parse().ok()?;
    (reps > 0.0).then(|| row.ns_per_iter / reps)
}

/// The normalised throughput of one gated workload in one results
/// file: states processed per unit of "one simulator replication" of
/// work.
fn normalised(rows: &[Row], prefix: &str) -> Result<f64, String> {
    let tp = throughput(rows, prefix)
        .ok_or_else(|| format!("no `{prefix}*` row (did the bench run?)"))?;
    let cal = ns_per_replication(rows)
        .ok_or_else(|| format!("no `{CALIBRATE_PREFIX}*` calibration row"))?;
    Ok(tp * cal)
}

/// One-line failure report for a gated metric: the percentage delta
/// *and* the baseline-vs-measured values, so the CI log names the
/// offending numbers without anyone opening the artifacts.
fn failure_line(what: &str, base: f64, cur: f64, delta_pct: f64, allowed_pct: f64) -> String {
    format!(
        "{what} regressed {delta_pct:.1}% (allowed {allowed_pct:.0}%): \
         baseline {base:.4} vs measured {cur:.4}"
    )
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut current, mut baseline, mut max_regression) = (None, None, 0.25f64);
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            max_regression = it
                .next()
                .ok_or("missing value for --max-regression")?
                .parse::<f64>()
                .map_err(|e| e.to_string())?;
        } else if current.is_none() {
            current = Some(a);
        } else if baseline.is_none() {
            baseline = Some(a);
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let usage = "usage: bench_check <current.json> <baseline.json> [--max-regression 0.25]";
    let current = current.ok_or(usage)?;
    let baseline = baseline.ok_or(usage)?;

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let cur_rows = parse_rows(&read(&current)?);
    let base_rows = parse_rows(&read(&baseline)?);

    let mut failures = Vec::new();
    println!("normalised throughput (states per simulator-replication of work):");
    for &(label, prefix) in GATES {
        let cur = normalised(&cur_rows, prefix).map_err(|e| format!("{current}: {e}"))?;
        let base = normalised(&base_rows, prefix).map_err(|e| format!("{baseline}: {e}"))?;
        let ratio = cur / base;
        println!(
            "  {label:<20} baseline {base:>10.4}  current {cur:>10.4}  ratio {ratio:.3}  \
             (gate: >= {:.3})",
            1.0 - max_regression
        );
        if ratio < 1.0 - max_regression {
            failures.push(failure_line(
                &format!("{label} throughput"),
                base,
                cur,
                (1.0 - ratio) * 100.0,
                max_regression * 100.0,
            ));
        }
    }
    println!("raw throughput (machine-independent by construction):");
    for &(label, prefix) in RAW_GATES {
        let cur = throughput(&cur_rows, prefix)
            .ok_or_else(|| format!("{current}: no `{prefix}*` row (did the bench run?)"))?;
        let base = throughput(&base_rows, prefix)
            .ok_or_else(|| format!("{baseline}: no `{prefix}*` row"))?;
        let ratio = cur / base;
        println!(
            "  {label:<20} baseline {base:>10.4}  current {cur:>10.4}  ratio {ratio:.3}  \
             (gate: >= {:.3})",
            1.0 - max_regression
        );
        if ratio < 1.0 - max_regression {
            failures.push(failure_line(
                &format!("{label} throughput"),
                base,
                cur,
                (1.0 - ratio) * 100.0,
                max_regression * 100.0,
            ));
        }
    }
    println!("peak live-heap (bytes, exact allocator count — lower is better):");
    for &(label, prefix) in MEM_GATES {
        let cur = peak_of(&cur_rows, prefix)
            .ok_or_else(|| format!("{current}: no `{prefix}*` peak_bytes (did the bench run?)"))?;
        let base = peak_of(&base_rows, prefix)
            .ok_or_else(|| format!("{baseline}: no `{prefix}*` peak_bytes"))?;
        let ratio = cur / base;
        println!(
            "  {label:<20} baseline {base:>13.0}  current {cur:>13.0}  ratio {ratio:.3}  \
             (gate: <= {:.3})",
            1.0 + max_regression
        );
        if ratio > 1.0 + max_regression {
            failures.push(failure_line(
                label,
                base,
                cur,
                (ratio - 1.0) * 100.0,
                max_regression * 100.0,
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "solver_vs_sim",
  "mode": "smoke",
  "host": { "logical_cores": 16, "page_size_bytes": 4096, "total_ram_bytes": 67108864000 },
  "results": [
    { "name": "solver_vs_sim/simulator_n2_replications_for_1pct_ci_x2500", "ns_per_iter": 25000000.0, "iters": 1 },
    { "name": "concurrent_intern/explore_exp_n3_threads1_states135125", "ns_per_iter": 700000000.0, "iters": 2, "peak_bytes": 104857600 },
    { "name": "solver_backends/solve_exp_n3_gauss_seidel_threads1_states135125", "ns_per_iter": 90000000.0, "iters": 2 },
    { "name": "solver_backends/solve_exp_n3_jacobi_threads1_states135125", "ns_per_iter": 150000000.0, "iters": 2 },
    { "name": "solver_backends/solve_exp_n3_krylov_threads1_states135125", "ns_per_iter": 60000000.0, "iters": 2 },
    { "name": "campaign/grid_warm_paper_n2_order8_points16_states4272", "ns_per_iter": 40000000.0, "iters": 16 },
    { "name": "campaign/grid_cold_paper_n2_order8_points16_states4272", "ns_per_iter": 160000000.0, "iters": 16 },
    { "name": "campaign/cache_hit_rate_per1000_states937", "ns_per_iter": 1000.0, "iters": 16 }
  ]
}"#;

    #[test]
    fn parses_and_normalises_every_gate() {
        let rows = parse_rows(SAMPLE);
        // The host-info object carries no `"name":` key, so it never
        // becomes a measurement row.
        assert_eq!(rows.len(), 8);
        let cal = ns_per_replication(&rows).unwrap();
        assert!((cal - 10000.0).abs() < 1e-9);
        for &(label, prefix) in GATES {
            let tp = throughput(&rows, prefix).unwrap_or_else(|| panic!("no row for {label}"));
            assert!(tp > 0.0, "{label}");
            let norm = normalised(&rows, prefix).unwrap();
            assert!((norm - tp * cal).abs() < 1e-12, "{label}");
        }
        // Spot-check one: the explore gate.
        let tp = throughput(&rows, GATES[0].1).unwrap();
        assert!((tp - 135125.0 / 7e8).abs() < 1e-12);
    }

    #[test]
    fn raw_gates_skip_the_calibration_row() {
        let rows = parse_rows(SAMPLE);
        // The hit-rate row encodes hits-per-1000-points as its state
        // count over a pinned ns_per_iter of 1000, so its raw
        // throughput IS the hit rate — no simulator normalisation.
        let (_, prefix) = RAW_GATES[0];
        let rate = throughput(&rows, prefix).unwrap();
        assert!((rate - 0.937).abs() < 1e-12, "hit rate {rate}");
    }

    #[test]
    fn peak_bytes_are_parsed_and_optional() {
        let rows = parse_rows(SAMPLE);
        let peak = peak_of(&rows, MEM_GATES[0].1).expect("explore row carries peak_bytes");
        assert!((peak - 104857600.0).abs() < 1e-6);
        // Rows without the field simply report no peak.
        assert_eq!(
            peak_of(&rows, "solver_backends/solve_exp_n3_gauss_seidel"),
            None
        );
    }

    #[test]
    fn failure_line_names_baseline_measured_and_delta_in_one_line() {
        let line = failure_line("explore throughput", 2.0, 1.0, 50.0, 25.0);
        assert_eq!(
            line,
            "explore throughput regressed 50.0% (allowed 25%): \
             baseline 2.0000 vs measured 1.0000"
        );
        assert!(!line.contains('\n'), "must stay a single log line");
    }

    #[test]
    fn missing_rows_are_reported() {
        let rows = parse_rows("{}");
        for &(_, prefix) in GATES {
            assert!(normalised(&rows, prefix).is_err());
        }
    }
}
