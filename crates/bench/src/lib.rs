//! Benchmark support crate: shared helpers for the Criterion benches
//! that regenerate the paper's tables and figures at reduced scale.
//!
//! The benches live in `benches/`:
//!
//! * `fig6_delay_cdf` — message-delay measurement campaign (Fig. 6),
//! * `fig7_latency` — class-1 latency, measurement and simulation
//!   (Fig. 7 / §5.2),
//! * `table1_crash_latency` — crash scenarios (Table 1),
//! * `fig8_qos` — failure-detector QoS estimation (Fig. 8),
//! * `fig9_latency_vs_timeout` — class-3 latency and the SAN
//!   two-state-FD model (Fig. 9),
//! * `engine_micro` — SAN simulator, event queue, and cluster-runtime
//!   microbenchmarks.

use ctsim_experiments::Scale;

/// The scale every figure bench runs at.
pub const BENCH_SCALE: Scale = Scale::Quick;

/// A fixed seed so benchmark workloads are identical across runs.
pub const BENCH_SEED: u64 = 0xBE7C;
