//! Benchmark support crate: shared helpers for the Criterion benches
//! that regenerate the paper's tables and figures at reduced scale.
//!
//! The benches live in `benches/`:
//!
//! * `fig6_delay_cdf` — message-delay measurement campaign (Fig. 6),
//! * `fig7_latency` — class-1 latency, measurement and simulation
//!   (Fig. 7 / §5.2),
//! * `table1_crash_latency` — crash scenarios (Table 1),
//! * `fig8_qos` — failure-detector QoS estimation (Fig. 8),
//! * `fig9_latency_vs_timeout` — class-3 latency and the SAN
//!   two-state-FD model (Fig. 9),
//! * `engine_micro` — SAN simulator, event queue, and cluster-runtime
//!   microbenchmarks.

use ctsim_experiments::Scale;

/// The scale every figure bench runs at.
pub const BENCH_SCALE: Scale = Scale::Quick;

/// A fixed seed so benchmark workloads are identical across runs.
pub const BENCH_SEED: u64 = 0xBE7C;

pub mod alloc_counter {
    //! A counting global allocator for peak-memory benchmarking.
    //!
    //! Install it in a bench target with
    //! `#[global_allocator] static A: CountingAlloc = CountingAlloc;`
    //! then bracket a workload with [`reset_peak`] / [`peak_bytes`] to
    //! measure its peak live heap. Unlike an RSS sample the counter is
    //! exact, immune to allocator caching, and deterministic for a
    //! deterministic workload — which is what lets `bench_check` gate
    //! peak-memory regressions as tightly as throughput ones.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// The system allocator wrapped with live/peak byte counters.
    pub struct CountingAlloc;

    fn add(bytes: usize) {
        let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                add(layout.size());
            }
            p
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
                add(new_size);
            }
            p
        }
    }

    /// Restarts the peak-tracking window at the current live size.
    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Currently live heap bytes.
    pub fn live_bytes() -> usize {
        CURRENT.load(Ordering::Relaxed)
    }
}
