//! A runnable process: consensus engine + failure detector packaged as
//! a [`ctsim_neko::Node`].

use ctsim_des::SimDuration;
use ctsim_fd::FailureDetector;
use ctsim_neko::{Ctx, Node, ProcessId, TimerKind};

use crate::consensus::{ConsensusMsg, CtConsensus};

/// Timer token used to trigger `propose` at a configured local time.
const TOKEN_PROPOSE: u64 = 1 << 50;

/// One process of the consensus system: the ◇S engine wired to a
/// failure detector `F` (oracle or heartbeat).
///
/// Every received message — application or heartbeat — is reported to
/// the failure detector first (the paper's detector treats *any*
/// message from `q` as a liveness proof), then suspicion transitions are
/// fed to the consensus engine, then the message itself is processed.
#[derive(Debug)]
pub struct ConsensusNode<V, F> {
    /// The consensus engine (public for inspection by harnesses).
    pub consensus: CtConsensus<V>,
    /// The failure-detector module.
    pub fd: F,
    /// Value to propose, and when (delay from start, local clock).
    proposal: Option<(V, SimDuration)>,
}

impl<V: Clone, F> ConsensusNode<V, F> {
    /// A node that proposes `value` `delay` after the run starts
    /// (the measurement harness aligns all starts to the same instant
    /// via the NTP-synchronized clocks).
    pub fn proposing(me: ProcessId, n: usize, fd: F, value: V, delay: SimDuration) -> Self {
        Self {
            consensus: CtConsensus::new(me, n),
            fd,
            proposal: Some((value, delay)),
        }
    }

    /// A node that never proposes on its own (driven externally).
    pub fn passive(me: ProcessId, n: usize, fd: F) -> Self {
        Self {
            consensus: CtConsensus::new(me, n),
            fd,
            proposal: None,
        }
    }
}

impl<V, F> ConsensusNode<V, F>
where
    V: Clone,
    F: FailureDetector<ConsensusMsg<V>>,
{
    fn pump_fd_events(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>>) {
        for ev in self.fd.drain_events() {
            let fd = &self.fd;
            let query = |q: ProcessId| fd.is_suspected(q);
            self.consensus
                .on_suspicion(ctx, ev.target, ev.suspected, &query);
        }
    }
}

impl<V, F> Node<ConsensusMsg<V>> for ConsensusNode<V, F>
where
    V: Clone,
    F: FailureDetector<ConsensusMsg<V>>,
{
    fn on_start(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>>) {
        self.fd.on_start(ctx);
        if let Some((_, delay)) = &self.proposal {
            ctx.set_timer(*delay, TimerKind::Precise, TOKEN_PROPOSE);
        }
    }

    fn on_app_message(
        &mut self,
        ctx: &mut Ctx<'_, ConsensusMsg<V>>,
        from: ProcessId,
        msg: ConsensusMsg<V>,
    ) {
        self.fd.note_alive(ctx, from);
        self.pump_fd_events(ctx);
        let fd = &self.fd;
        let query = |q: ProcessId| fd.is_suspected(q);
        self.consensus.on_message(ctx, from, msg, &query);
    }

    fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>>, from: ProcessId) {
        self.fd.note_alive(ctx, from);
        self.pump_fd_events(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ConsensusMsg<V>>, token: u64) {
        if token == TOKEN_PROPOSE {
            if let Some((value, _)) = self.proposal.take() {
                let fd = &self.fd;
                let query = |q: ProcessId| fd.is_suspected(q);
                self.consensus.propose(ctx, value, &query);
            }
            return;
        }
        if self.fd.on_timer(ctx, token) {
            self.pump_fd_events(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsim_des::SimTime;
    use ctsim_fd::{FdParams, HeartbeatFd, OracleFd};
    use ctsim_neko::{NodeConfig, Runtime};
    use ctsim_netsim::{HostParams, NetParams};
    use ctsim_stoch::SimRng;

    fn quiet_host() -> HostParams {
        HostParams {
            gc_enabled: false,
            recv_tail_prob: 0.0,
            ..HostParams::default()
        }
    }

    type OracleNode = ConsensusNode<u64, OracleFd>;

    fn oracle_runtime(
        n: usize,
        seed: u64,
        crashed: Vec<ProcessId>,
    ) -> Runtime<ConsensusMsg<u64>, OracleNode> {
        let crashed2 = crashed.clone();
        let mut rt = Runtime::new(
            n,
            NetParams::default(),
            quiet_host(),
            NodeConfig::default(),
            SimRng::new(seed),
            move |p| {
                let fd = if crashed2.is_empty() {
                    OracleFd::accurate(n)
                } else {
                    OracleFd::suspecting(n, &crashed2)
                };
                ConsensusNode::proposing(p, n, fd, 100 + p.0 as u64, SimDuration::from_ms(1.0))
            },
        );
        for p in crashed {
            rt.crash(p);
        }
        rt
    }

    fn decisions(rt: &Runtime<ConsensusMsg<u64>, OracleNode>) -> Vec<Option<u64>> {
        (0..rt.n())
            .map(|i| rt.node(ProcessId(i)).consensus.decision().copied())
            .collect()
    }

    #[test]
    fn all_decide_the_coordinators_value_without_failures() {
        for n in [1, 2, 3, 5, 7] {
            let mut rt = oracle_runtime(n, 42 + n as u64, vec![]);
            rt.run_until(SimTime::from_ms(200.0));
            let ds = decisions(&rt);
            for (i, d) in ds.iter().enumerate() {
                assert_eq!(*d, Some(100), "n={n}, p{} decided {d:?}", i + 1);
            }
        }
    }

    #[test]
    fn agreement_and_validity_hold() {
        let mut rt = oracle_runtime(5, 7, vec![]);
        rt.run_until(SimTime::from_ms(200.0));
        let ds: Vec<u64> = decisions(&rt).into_iter().flatten().collect();
        assert_eq!(ds.len(), 5, "termination");
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "agreement");
        assert!((100..105).contains(&ds[0]), "validity");
    }

    #[test]
    fn one_round_without_failures() {
        let mut rt = oracle_runtime(5, 9, vec![]);
        rt.run_until(SimTime::from_ms(200.0));
        // The first coordinator decides in round 1.
        assert_eq!(rt.node(ProcessId(0)).consensus.round(), 1);
    }

    #[test]
    fn coordinator_crash_finishes_in_two_rounds_with_p2_value() {
        let mut rt = oracle_runtime(5, 11, vec![ProcessId(0)]);
        rt.run_until(SimTime::from_ms(500.0));
        let ds = decisions(&rt);
        for (i, d) in ds.iter().enumerate().skip(1) {
            assert_eq!(*d, Some(101), "p{} must decide p2's value", i + 1);
        }
        assert_eq!(ds[0], None, "crashed process never decides");
        // Round 2 coordinator is p2.
        assert_eq!(rt.node(ProcessId(1)).consensus.round(), 2);
    }

    #[test]
    fn participant_crash_still_one_round() {
        let mut rt = oracle_runtime(5, 13, vec![ProcessId(1)]);
        rt.run_until(SimTime::from_ms(500.0));
        let ds = decisions(&rt);
        assert_eq!(ds[0], Some(100));
        for d in &ds[2..5] {
            assert_eq!(*d, Some(100));
        }
        assert_eq!(rt.node(ProcessId(0)).consensus.round(), 1);
    }

    #[test]
    fn tolerates_minority_crashes() {
        // n = 5 tolerates 2 crashes (majority 3).
        let mut rt = oracle_runtime(5, 17, vec![ProcessId(0), ProcessId(2)]);
        rt.run_until(SimTime::from_ms(500.0));
        let ds = decisions(&rt);
        let alive: Vec<u64> = [1usize, 3, 4].iter().filter_map(|&i| ds[i]).collect();
        assert_eq!(alive.len(), 3, "all correct processes decide: {ds:?}");
        assert!(alive.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn decision_timestamps_are_recorded() {
        let mut rt = oracle_runtime(3, 19, vec![]);
        rt.run_until(SimTime::from_ms(200.0));
        let c = &rt.node(ProcessId(0)).consensus;
        let t_local = c.decided_at_local().expect("decided");
        let t_true = c.decided_at_true().expect("decided");
        // Proposal at ~1 ms; decision within a handful of ms; clocks
        // agree within the 50 µs NTP bound.
        assert!(t_true.as_ms() > 1.0 && t_true.as_ms() < 30.0);
        assert!((t_local.as_ms() - t_true.as_ms()).abs() <= 0.051);
    }

    /// With a *real* heartbeat detector and a harsh timeout, wrong
    /// suspicions occur; the algorithm must still reach agreement on
    /// every run (safety despite bad QoS).
    #[test]
    fn agreement_survives_wrong_suspicions() {
        for seed in 0..10u64 {
            let n = 3;
            let mut rt = Runtime::new(
                n,
                NetParams::default(),
                HostParams::default(), // GC pauses and tails ON
                NodeConfig::default(),
                SimRng::new(1000 + seed),
                move |p| {
                    ConsensusNode::proposing(
                        p,
                        n,
                        HeartbeatFd::new(p, n, FdParams::with_timeout(5.0)),
                        p.0 as u64,
                        SimDuration::from_ms(1.0),
                    )
                },
            );
            let all_decided = rt.run_while(SimTime::from_secs(30.0), |nodes| {
                nodes.iter().any(|nd| nd.consensus.decision().is_none())
            });
            assert!(all_decided, "seed {seed}: termination under ◇S-like FD");
            let ds: Vec<u64> = (0..n)
                .map(|i| *rt.node(ProcessId(i)).consensus.decision().expect("decided"))
                .collect();
            assert!(
                ds.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: agreement violated: {ds:?}"
            );
            assert!(ds[0] < n as u64, "validity");
        }
    }
}
