//! The ◇S consensus protocol engine: a reactive state machine driven by
//! message and suspicion events.

use ctsim_des::SimTime;
use ctsim_neko::{Ctx, ProcessId};

/// The environment a consensus engine runs in: message output, handler
/// CPU billing, and clocks.
///
/// [`ctsim_neko::Ctx`] implements it directly; wrappers can reinterpret
/// the traffic — e.g. the atomic-broadcast layer tags consensus messages
/// with an instance number before putting them on the wire.
pub trait ConsensusEnv<V> {
    /// Sends a consensus message to one process.
    fn send(&mut self, to: ProcessId, msg: ConsensusMsg<V>);
    /// Sends a consensus message to every other process (sequential
    /// unicasts, as in the measured implementation).
    fn broadcast_others(&mut self, msg: ConsensusMsg<V>);
    /// Bills one unit of protocol-handler work on the local CPU.
    fn charge_work(&mut self);
    /// The local (NTP-disciplined) clock.
    fn now_local(&self) -> SimTime;
    /// True simulation time (instrumentation only).
    fn now_true(&self) -> SimTime;
}

impl<'b, V: Clone> ConsensusEnv<V> for Ctx<'b, ConsensusMsg<V>> {
    fn send(&mut self, to: ProcessId, msg: ConsensusMsg<V>) {
        Ctx::send(self, to, msg);
    }
    fn broadcast_others(&mut self, msg: ConsensusMsg<V>) {
        Ctx::broadcast_others(self, msg);
    }
    fn charge_work(&mut self) {
        Ctx::charge_work(self);
    }
    fn now_local(&self) -> SimTime {
        Ctx::now_local(self)
    }
    fn now_true(&self) -> SimTime {
        Ctx::now_true(self)
    }
}

/// The wire messages of the algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusMsg<V> {
    /// Phase 1: a process's current estimate, stamped with the round in
    /// which it was last adopted.
    Estimate {
        /// Round this estimate is sent for.
        round: u64,
        /// The estimate.
        est: V,
        /// Round in which `est` was last adopted from a coordinator.
        ts: u64,
    },
    /// Phase 2: the coordinator's proposal for this round.
    Propose {
        /// The proposing round.
        round: u64,
        /// The proposed value.
        est: V,
    },
    /// Phase 3: positive acknowledgement.
    Ack {
        /// The acknowledged round.
        round: u64,
    },
    /// Phase 3: negative acknowledgement (coordinator suspected).
    Nack {
        /// The refused round.
        round: u64,
    },
    /// Phase 4 / reliable broadcast: the decision.
    Decide {
        /// The decided value.
        est: V,
    },
}

impl<V> ConsensusMsg<V> {
    /// The round a message belongs to (`None` for decisions, which are
    /// round-independent).
    pub fn round(&self) -> Option<u64> {
        match self {
            ConsensusMsg::Estimate { round, .. }
            | ConsensusMsg::Propose { round, .. }
            | ConsensusMsg::Ack { round }
            | ConsensusMsg::Nack { round } => Some(*round),
            ConsensusMsg::Decide { .. } => None,
        }
    }
}

/// Where a process stands within its current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Not started (nothing proposed yet).
    Idle,
    /// Coordinator, phase 2: gathering a majority of estimates.
    CoordWaitEstimates,
    /// Coordinator, phase 4: gathering a majority of (n)acks.
    CoordWaitAcks,
    /// Participant, phase 3: waiting for the proposal or a suspicion.
    WaitProposal,
    /// Decided; the protocol is finished for this process.
    Decided,
}

/// Per-round tallies kept by the coordinator.
#[derive(Debug, Clone)]
struct RoundTally<V> {
    estimates: Vec<(V, u64)>,
    acks: u32,
    nacks: u32,
}

impl<V> Default for RoundTally<V> {
    fn default() -> Self {
        Self {
            estimates: Vec::new(),
            acks: 0,
            nacks: 0,
        }
    }
}

/// The Chandra–Toueg ◇S consensus engine for one process.
///
/// The engine is transport-agnostic: the owner forwards messages via
/// [`CtConsensus::on_message`] and failure-detector transitions via
/// [`CtConsensus::on_suspicion`]; outgoing messages go through the
/// [`Ctx`]. The `suspected` closure passed to the event handlers is the
/// failure-detector query `D_p` of the model. See
/// [`crate::ConsensusNode`] for a ready-made wrapper.
#[derive(Debug)]
pub struct CtConsensus<V> {
    me: ProcessId,
    n: usize,
    majority: usize,
    phase: Phase,
    round: u64,
    estimate: Option<V>,
    ts: u64,
    tally: RoundTally<V>,
    /// Messages for rounds this process has not reached yet.
    pending: Vec<(ProcessId, ConsensusMsg<V>)>,
    decision: Option<V>,
    decided_local: Option<SimTime>,
    decided_true: Option<SimTime>,
    decide_relayed: bool,
    rounds_executed: u64,
}

impl<V: Clone> CtConsensus<V> {
    /// Creates an engine for process `me` in a system of `n` processes.
    ///
    /// # Panics
    /// Panics if `me` is out of range or `n == 0`.
    pub fn new(me: ProcessId, n: usize) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        assert!(me.0 < n, "process id out of range");
        Self {
            me,
            n,
            majority: n / 2 + 1,
            phase: Phase::Idle,
            round: 0,
            estimate: None,
            ts: 0,
            tally: RoundTally::default(),
            pending: Vec::new(),
            decision: None,
            decided_local: None,
            decided_true: None,
            decide_relayed: false,
            rounds_executed: 0,
        }
    }

    /// The coordinator of a round: `p_i` coordinates rounds `kn + i`
    /// (1-based in the paper); round 1 is coordinated by `p1`.
    pub fn coordinator_of(&self, round: u64) -> ProcessId {
        ProcessId(((round - 1) % self.n as u64) as usize)
    }

    /// The majority threshold `⌈(n+1)/2⌉`.
    pub fn majority(&self) -> usize {
        self.majority
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }

    /// Local-clock timestamp of the decision (what the paper measures).
    pub fn decided_at_local(&self) -> Option<SimTime> {
        self.decided_local
    }

    /// True-time timestamp of the decision (instrumentation only).
    pub fn decided_at_true(&self) -> Option<SimTime> {
        self.decided_true
    }

    /// The round this process is currently executing.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of rounds this process entered.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether [`CtConsensus::propose`] has been called (or a decision
    /// already arrived).
    pub fn has_started(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// Proposes an initial value and starts round 1. A no-op if a
    /// decision already arrived (possible when other processes finish
    /// before this one even starts).
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn propose(
        &mut self,
        env: &mut dyn ConsensusEnv<V>,
        value: V,
        suspected: &dyn Fn(ProcessId) -> bool,
    ) {
        if self.phase == Phase::Decided {
            return;
        }
        assert!(!self.has_started(), "propose called twice");
        self.estimate = Some(value);
        self.ts = 0;
        self.start_round(env, 1, suspected);
    }

    /// Handles an incoming protocol message.
    pub fn on_message(
        &mut self,
        env: &mut dyn ConsensusEnv<V>,
        from: ProcessId,
        msg: ConsensusMsg<V>,
        suspected: &dyn Fn(ProcessId) -> bool,
    ) {
        if self.phase == Phase::Decided {
            return;
        }
        match msg {
            ConsensusMsg::Decide { est } => self.deliver_decision(env, est),
            ConsensusMsg::Estimate { round, est, ts } => {
                if round > self.round {
                    self.pending
                        .push((from, ConsensusMsg::Estimate { round, est, ts }));
                } else if round == self.round && self.phase == Phase::CoordWaitEstimates {
                    self.record_estimate(env, est, ts, suspected);
                }
                // Older rounds: stale, dropped without billing work.
            }
            ConsensusMsg::Propose { round, est } => {
                if round > self.round {
                    self.pending
                        .push((from, ConsensusMsg::Propose { round, est }));
                } else if round == self.round && self.phase == Phase::WaitProposal {
                    // Phase 3, positive path: adopt and acknowledge.
                    env.charge_work();
                    self.estimate = Some(est);
                    self.ts = round;
                    let coord = self.coordinator_of(round);
                    env.send(coord, ConsensusMsg::Ack { round });
                    self.start_round(env, round + 1, suspected);
                }
            }
            ConsensusMsg::Ack { round } => {
                if round == self.round && self.phase == Phase::CoordWaitAcks {
                    self.tally.acks += 1;
                    self.check_ack_majority(env, suspected);
                } else if round == self.round && self.phase == Phase::CoordWaitEstimates {
                    // Cannot happen: acks answer our own proposal.
                    debug_assert!(false, "ack before proposing");
                } else if round > self.round {
                    self.pending.push((from, ConsensusMsg::Ack { round }));
                }
            }
            ConsensusMsg::Nack { round } => {
                if round == self.round
                    && matches!(self.phase, Phase::CoordWaitAcks | Phase::CoordWaitEstimates)
                {
                    // Nacks may arrive while still gathering estimates
                    // (a participant suspected us before we proposed);
                    // they count towards phase 4.
                    self.tally.nacks += 1;
                    self.check_ack_majority(env, suspected);
                } else if round > self.round {
                    self.pending.push((from, ConsensusMsg::Nack { round }));
                }
            }
        }
    }

    /// Handles a failure-detector transition. Only *new suspicions* of
    /// the current coordinator matter (phase 3's negative path).
    pub fn on_suspicion(
        &mut self,
        env: &mut dyn ConsensusEnv<V>,
        target: ProcessId,
        now_suspected: bool,
        suspected: &dyn Fn(ProcessId) -> bool,
    ) {
        if !now_suspected || self.phase != Phase::WaitProposal {
            return;
        }
        if target == self.coordinator_of(self.round) {
            let round = self.round;
            env.charge_work();
            env.send(self.coordinator_of(round), ConsensusMsg::Nack { round });
            self.start_round(env, round + 1, suspected);
        }
    }

    fn start_round(
        &mut self,
        env: &mut dyn ConsensusEnv<V>,
        mut round: u64,
        suspected: &dyn Fn(ProcessId) -> bool,
    ) {
        loop {
            self.round = round;
            self.rounds_executed += 1;
            self.tally = RoundTally::default();
            let coord = self.coordinator_of(round);
            if coord == self.me {
                self.phase = Phase::CoordWaitEstimates;
                // Phase 1 to self: the coordinator's own estimate is
                // recorded directly, as the measured implementation does.
                let est = self.estimate.clone().expect("estimate set by propose");
                let ts = self.ts;
                self.record_estimate(env, est, ts, suspected);
            } else {
                let est = self.estimate.clone().expect("estimate set by propose");
                env.send(
                    coord,
                    ConsensusMsg::Estimate {
                        round,
                        est,
                        ts: self.ts,
                    },
                );
                self.phase = Phase::WaitProposal;
            }
            if self.phase == Phase::Decided || self.round != round {
                // record_estimate chained into a decision or a nested
                // round change; everything is handled.
                return;
            }
            // Replay buffered messages addressed to this round.
            let mut replay = Vec::new();
            self.pending.retain(|(from, m)| match m.round() {
                Some(r) if r == round => {
                    replay.push((*from, m.clone()));
                    false
                }
                Some(r) => r > round, // drop abandoned rounds
                None => true,
            });
            for (from, m) in replay {
                self.on_message(env, from, m, suspected);
                if self.phase == Phase::Decided || self.round != round {
                    return;
                }
            }
            // Phase 3 negative path, taken immediately when the round's
            // coordinator is already suspected as the round begins.
            if self.phase == Phase::WaitProposal && suspected(coord) {
                env.charge_work();
                env.send(coord, ConsensusMsg::Nack { round });
                round += 1;
                continue;
            }
            return;
        }
    }

    fn record_estimate(
        &mut self,
        env: &mut dyn ConsensusEnv<V>,
        est: V,
        ts: u64,
        suspected: &dyn Fn(ProcessId) -> bool,
    ) {
        debug_assert_eq!(self.phase, Phase::CoordWaitEstimates);
        if self.tally.estimates.len() < self.majority {
            env.charge_work();
            self.tally.estimates.push((est, ts));
            if self.tally.estimates.len() == self.majority {
                // Phase 2: propose the estimate with the largest stamp
                // (first received wins ties, so in stable runs the
                // coordinator proposes its own estimate).
                let mut best_idx = 0;
                for (i, (_, ts)) in self.tally.estimates.iter().enumerate() {
                    if *ts > self.tally.estimates[best_idx].1 {
                        best_idx = i;
                    }
                }
                let (best, _) = self.tally.estimates[best_idx].clone();
                self.estimate = Some(best.clone());
                self.ts = self.round;
                let round = self.round;
                env.broadcast_others(ConsensusMsg::Propose { round, est: best });
                self.phase = Phase::CoordWaitAcks;
                // The coordinator's own positive ack.
                self.tally.acks += 1;
                self.check_ack_majority(env, suspected);
            }
        }
    }

    fn check_ack_majority(
        &mut self,
        env: &mut dyn ConsensusEnv<V>,
        suspected: &dyn Fn(ProcessId) -> bool,
    ) {
        if self.phase != Phase::CoordWaitAcks {
            return;
        }
        let total = self.tally.acks + self.tally.nacks;
        if (total as usize) < self.majority {
            return;
        }
        if self.tally.nacks == 0 {
            // Phase 4, positive outcome: reliably broadcast the decision.
            // The coordinator R-delivers its own decide through the local
            // stack (a loopback message), as the measured implementation
            // does.
            let est = self.estimate.clone().expect("estimate set");
            env.charge_work();
            self.decide_relayed = true;
            env.broadcast_others(ConsensusMsg::Decide { est: est.clone() });
            let me = self.me;
            env.send(me, ConsensusMsg::Decide { est });
        } else {
            // Phase 4, negative outcome: next round, next coordinator.
            let next = self.round + 1;
            self.start_round(env, next, suspected);
        }
    }

    fn deliver_decision(&mut self, env: &mut dyn ConsensusEnv<V>, est: V) {
        if self.decision.is_some() {
            return;
        }
        env.charge_work();
        self.decision = Some(est.clone());
        self.decided_local = Some(env.now_local());
        self.decided_true = Some(env.now_true());
        self.phase = Phase::Decided;
        self.pending.clear();
        if !self.decide_relayed {
            // Lazy reliable broadcast: relay once.
            self.decide_relayed = true;
            env.broadcast_others(ConsensusMsg::Decide { est });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_rotates_one_based() {
        let c: CtConsensus<u64> = CtConsensus::new(ProcessId(0), 3);
        assert_eq!(c.coordinator_of(1), ProcessId(0));
        assert_eq!(c.coordinator_of(2), ProcessId(1));
        assert_eq!(c.coordinator_of(3), ProcessId(2));
        assert_eq!(c.coordinator_of(4), ProcessId(0));
    }

    #[test]
    fn majority_is_ceil_half_plus() {
        for (n, maj) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (11, 6)] {
            let c: CtConsensus<u64> = CtConsensus::new(ProcessId(0), n);
            assert_eq!(c.majority(), maj, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _: CtConsensus<u64> = CtConsensus::new(ProcessId(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_rejected() {
        let _: CtConsensus<u64> = CtConsensus::new(ProcessId(3), 3);
    }

    #[test]
    fn initial_state_is_idle() {
        let c: CtConsensus<u64> = CtConsensus::new(ProcessId(1), 5);
        assert_eq!(c.phase(), Phase::Idle);
        assert!(!c.has_started());
        assert!(c.decision().is_none());
        assert_eq!(c.rounds_executed(), 0);
    }

    #[test]
    fn msg_round_accessor() {
        assert_eq!(
            ConsensusMsg::Estimate {
                round: 3,
                est: 1u64,
                ts: 0
            }
            .round(),
            Some(3)
        );
        assert_eq!(ConsensusMsg::<u64>::Ack { round: 7 }.round(), Some(7));
        assert_eq!(ConsensusMsg::Decide { est: 1u64 }.round(), None);
    }
}
