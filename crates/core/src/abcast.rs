//! Atomic broadcast by reduction to consensus (Chandra & Toueg).
//!
//! This is the paper's motivating application (§2.3): a service
//! replicated with active replication receives client requests through
//! atomic broadcast, which guarantees that all replicas see all requests
//! in the same order; atomic broadcast in turn is solved by a sequence
//! of consensus instances. A request can be delivered at a replica as
//! soon as that replica decides in the corresponding consensus — which
//! is why consensus *latency* (time to first decision) is the paper's
//! performance measure.
//!
//! The reduction: messages are disseminated with a lazy reliable
//! broadcast; undelivered message identifiers are proposed to consensus
//! instance `k`; the decided batch is delivered in a deterministic
//! order; then instance `k+1` handles the rest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ctsim_des::SimTime;
use ctsim_fd::FailureDetector;
use ctsim_neko::{Ctx, Node, ProcessId};

use crate::consensus::{ConsensusEnv, ConsensusMsg, CtConsensus};

/// Identifier of an abroadcast message: (origin process, sequence no).
pub type MsgId = (u32, u64);

/// A decided batch: message identifiers in delivery order.
pub type Batch = Vec<MsgId>;

/// Wire messages of the atomic-broadcast stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbcastMsg<A> {
    /// Reliable-broadcast dissemination of an application message.
    Data {
        /// Origin process index.
        origin: u32,
        /// Origin-local sequence number.
        seq: u64,
        /// Application payload.
        payload: A,
    },
    /// A consensus message of instance `instance`.
    Cons {
        /// Consensus instance number (0-based).
        instance: u64,
        /// The embedded consensus message over batches.
        inner: ConsensusMsg<Batch>,
    },
}

/// Adapter handed to the embedded consensus engine: tags outgoing
/// consensus messages with the instance number.
struct TaggedEnv<'a, 'b, A> {
    ctx: &'a mut Ctx<'b, AbcastMsg<A>>,
    instance: u64,
}

impl<A: Clone> ConsensusEnv<Batch> for TaggedEnv<'_, '_, A> {
    fn send(&mut self, to: ProcessId, msg: ConsensusMsg<Batch>) {
        self.ctx.send(
            to,
            AbcastMsg::Cons {
                instance: self.instance,
                inner: msg,
            },
        );
    }
    fn broadcast_others(&mut self, msg: ConsensusMsg<Batch>) {
        self.ctx.broadcast_others(AbcastMsg::Cons {
            instance: self.instance,
            inner: msg,
        });
    }
    fn charge_work(&mut self) {
        self.ctx.charge_work();
    }
    fn now_local(&self) -> SimTime {
        self.ctx.now_local()
    }
    fn now_true(&self) -> SimTime {
        self.ctx.now_true()
    }
}

/// One replica of the atomic-broadcast service.
///
/// `A` is the application payload; `F` the failure detector shared by
/// the embedded consensus instances.
#[derive(Debug)]
pub struct AbcastNode<A, F> {
    me: ProcessId,
    n: usize,
    /// The failure-detector module (public for QoS inspection).
    pub fd: F,
    next_seq: u64,
    /// Payloads received (reliable broadcast), keyed by id.
    store: BTreeMap<MsgId, A>,
    received: BTreeSet<MsgId>,
    decided_ids: BTreeSet<MsgId>,
    /// Ids decided but whose payload has not arrived yet.
    delivery_queue: VecDeque<MsgId>,
    instance: u64,
    engine: Option<CtConsensus<Batch>>,
    /// Consensus messages for future instances.
    backlog: Vec<(ProcessId, u64, ConsensusMsg<Batch>)>,
    /// The total order as delivered locally: (origin, seq, payload).
    delivered_log: Vec<(u32, u64, A)>,
}

impl<A, F> AbcastNode<A, F>
where
    A: Clone + Ord,
    F: FailureDetector<AbcastMsg<A>>,
{
    /// Creates a replica.
    pub fn new(me: ProcessId, n: usize, fd: F) -> Self {
        Self {
            me,
            n,
            fd,
            next_seq: 0,
            store: BTreeMap::new(),
            received: BTreeSet::new(),
            decided_ids: BTreeSet::new(),
            delivery_queue: VecDeque::new(),
            instance: 0,
            engine: None,
            backlog: Vec::new(),
            delivered_log: Vec::new(),
        }
    }

    /// The locally delivered total order so far.
    pub fn delivered(&self) -> &[(u32, u64, A)] {
        &self.delivered_log
    }

    /// Number of consensus instances completed.
    pub fn instances_completed(&self) -> u64 {
        self.instance
    }

    /// Atomically broadcasts a payload. Call from a harness-driven
    /// handler (e.g. a timer in a wrapping node).
    pub fn abroadcast(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>, payload: A) {
        let id = (self.me.0 as u32, self.next_seq);
        self.next_seq += 1;
        self.store.insert(id, payload.clone());
        self.received.insert(id);
        ctx.broadcast_others(AbcastMsg::Data {
            origin: id.0,
            seq: id.1,
            payload,
        });
        self.maybe_start_instance(ctx);
    }

    fn undelivered(&self) -> Batch {
        self.received
            .iter()
            .filter(|id| !self.decided_ids.contains(*id))
            .copied()
            .collect()
    }

    fn maybe_start_instance(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>) {
        if let Some(engine) = &self.engine {
            if !engine.has_started() {
                // Engine created passively by an early message of this
                // instance; propose now if we have anything.
                let batch = self.undelivered();
                if !batch.is_empty() {
                    let fd = &self.fd;
                    let query = |q: ProcessId| fd.is_suspected(q);
                    let mut env = TaggedEnv {
                        ctx,
                        instance: self.instance,
                    };
                    self.engine
                        .as_mut()
                        .expect("checked above")
                        .propose(&mut env, batch, &query);
                    self.check_decision(ctx);
                }
            }
            return;
        }
        let batch = self.undelivered();
        if batch.is_empty() {
            return;
        }
        let mut engine = CtConsensus::new(self.me, self.n);
        let fd = &self.fd;
        let query = |q: ProcessId| fd.is_suspected(q);
        let mut env = TaggedEnv {
            ctx,
            instance: self.instance,
        };
        engine.propose(&mut env, batch, &query);
        self.engine = Some(engine);
        self.check_decision(ctx);
    }

    fn check_decision(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>) {
        let Some(engine) = &self.engine else { return };
        let Some(batch) = engine.decision().cloned() else {
            return;
        };
        self.engine = None;
        self.instance += 1;
        for id in batch {
            if self.decided_ids.insert(id) {
                self.delivery_queue.push_back(id);
            }
        }
        self.flush_deliveries();
        // Replay consensus messages buffered for the new instance.
        let inst = self.instance;
        let mut replay = Vec::new();
        self.backlog.retain(|(from, i, m)| {
            if *i == inst {
                replay.push((*from, m.clone()));
                false
            } else {
                *i > inst
            }
        });
        for (from, m) in replay {
            self.handle_cons(ctx, from, inst, m);
        }
        self.maybe_start_instance(ctx);
    }

    fn flush_deliveries(&mut self) {
        while let Some(id) = self.delivery_queue.front().copied() {
            let Some(p) = self.store.get(&id) else { break };
            self.delivered_log.push((id.0, id.1, p.clone()));
            self.delivery_queue.pop_front();
        }
    }

    fn handle_cons(
        &mut self,
        ctx: &mut Ctx<'_, AbcastMsg<A>>,
        from: ProcessId,
        instance: u64,
        inner: ConsensusMsg<Batch>,
    ) {
        if instance < self.instance {
            return; // finished instance, stale
        }
        if instance > self.instance {
            self.backlog.push((from, instance, inner));
            return;
        }
        // Participate even before having anything to propose: rounds are
        // buffered by the engine until we do.
        let engine = self
            .engine
            .get_or_insert_with(|| CtConsensus::new(self.me, self.n));
        let fd = &self.fd;
        let query = |q: ProcessId| fd.is_suspected(q);
        let mut env = TaggedEnv { ctx, instance };
        engine.on_message(&mut env, from, inner, &query);
        self.check_decision(ctx);
        self.maybe_start_instance(ctx);
    }

    fn pump_fd(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>) {
        let events = self.fd.drain_events();
        if events.is_empty() {
            return;
        }
        if let Some(engine) = self.engine.as_mut() {
            let fd = &self.fd;
            let query = |q: ProcessId| fd.is_suspected(q);
            let mut env = TaggedEnv {
                ctx,
                instance: self.instance,
            };
            for ev in events {
                engine.on_suspicion(&mut env, ev.target, ev.suspected, &query);
            }
        }
        self.check_decision(ctx);
    }
}

impl<A, F> Node<AbcastMsg<A>> for AbcastNode<A, F>
where
    A: Clone + Ord,
    F: FailureDetector<AbcastMsg<A>>,
{
    fn on_start(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>) {
        self.fd.on_start(ctx);
    }

    fn on_app_message(
        &mut self,
        ctx: &mut Ctx<'_, AbcastMsg<A>>,
        from: ProcessId,
        msg: AbcastMsg<A>,
    ) {
        self.fd.note_alive(ctx, from);
        self.pump_fd(ctx);
        match msg {
            AbcastMsg::Data {
                origin,
                seq,
                payload,
            } => {
                let id = (origin, seq);
                if self.received.insert(id) {
                    self.store.insert(id, payload.clone());
                    // Lazy reliable broadcast: relay on first receipt.
                    ctx.broadcast_others(AbcastMsg::Data {
                        origin,
                        seq,
                        payload,
                    });
                    self.flush_deliveries();
                    self.maybe_start_instance(ctx);
                } else if let std::collections::btree_map::Entry::Vacant(e) = self.store.entry(id) {
                    e.insert(payload);
                    self.flush_deliveries();
                }
            }
            AbcastMsg::Cons { instance, inner } => {
                self.handle_cons(ctx, from, instance, inner);
            }
        }
    }

    fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>, from: ProcessId) {
        self.fd.note_alive(ctx, from);
        self.pump_fd(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AbcastMsg<A>>, token: u64) {
        if self.fd.on_timer(ctx, token) {
            self.pump_fd(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsim_des::{SimDuration, SimTime};
    use ctsim_fd::OracleFd;
    use ctsim_neko::{NodeConfig, Runtime, TimerKind};
    use ctsim_netsim::{HostParams, NetParams};
    use ctsim_stoch::SimRng;

    /// A wrapper node that abroadcasts a few payloads from timers.
    struct Driver {
        inner: AbcastNode<u64, OracleFd>,
        to_send: Vec<u64>,
    }

    impl Node<AbcastMsg<u64>> for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_, AbcastMsg<u64>>) {
            self.inner.on_start(ctx);
            for (k, _) in self.to_send.iter().enumerate() {
                ctx.set_timer(
                    SimDuration::from_ms(1.0 + 0.37 * k as f64),
                    TimerKind::Precise,
                    100 + k as u64,
                );
            }
        }
        fn on_app_message(
            &mut self,
            ctx: &mut Ctx<'_, AbcastMsg<u64>>,
            from: ProcessId,
            msg: AbcastMsg<u64>,
        ) {
            self.inner.on_app_message(ctx, from, msg);
        }
        fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, AbcastMsg<u64>>, from: ProcessId) {
            self.inner.on_heartbeat(ctx, from);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, AbcastMsg<u64>>, token: u64) {
            if token >= 100 {
                let k = (token - 100) as usize;
                let payload = self.to_send[k];
                self.inner.abroadcast(ctx, payload);
            } else {
                self.inner.on_timer(ctx, token);
            }
        }
    }

    fn quiet_host() -> HostParams {
        HostParams {
            gc_enabled: false,
            recv_tail_prob: 0.0,
            ..HostParams::default()
        }
    }

    fn run_abcast(n: usize, seed: u64, sends: Vec<Vec<u64>>) -> Vec<Vec<(u32, u64, u64)>> {
        let mut rt: Runtime<AbcastMsg<u64>, Driver> = Runtime::new(
            n,
            NetParams::default(),
            quiet_host(),
            NodeConfig::default(),
            SimRng::new(seed),
            |p| Driver {
                inner: AbcastNode::new(p, n, OracleFd::accurate(n)),
                to_send: sends[p.0].clone(),
            },
        );
        rt.run_until(SimTime::from_secs(2.0));
        (0..n)
            .map(|i| rt.node(ProcessId(i)).inner.delivered().to_vec())
            .collect()
    }

    #[test]
    fn single_broadcast_reaches_all_in_order() {
        let logs = run_abcast(3, 1, vec![vec![7], vec![], vec![]]);
        for log in &logs {
            assert_eq!(log, &vec![(0, 0, 7)]);
        }
    }

    #[test]
    fn total_order_is_identical_across_replicas() {
        let sends = vec![vec![10, 11], vec![20], vec![30, 31, 32]];
        let logs = run_abcast(3, 2, sends);
        let total: usize = 6;
        for log in &logs {
            assert_eq!(log.len(), total, "all messages delivered: {log:?}");
        }
        for w in logs.windows(2) {
            assert_eq!(w[0], w[1], "replicas must deliver in the same order");
        }
    }

    #[test]
    fn no_duplicates_no_invented_messages() {
        let sends = vec![vec![1, 2, 3], vec![4, 5], vec![]];
        let logs = run_abcast(3, 3, sends);
        let mut seen = std::collections::HashSet::new();
        for d in &logs[0] {
            assert!(seen.insert((d.0, d.1)), "duplicate delivery {d:?}");
            assert!((1..=5).contains(&d.2), "unknown payload {d:?}");
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn order_respects_consensus_not_send_order_ties() {
        // Concurrent sends from all three replicas still produce one
        // agreed order; run with two seeds and confirm determinism per
        // seed (the order itself may differ between seeds).
        let sends = vec![vec![100], vec![200], vec![300]];
        let a = run_abcast(3, 4, sends.clone());
        let b = run_abcast(3, 4, sends);
        assert_eq!(a, b, "same seed, same order");
    }
}
