//! The Chandra–Toueg ◇S consensus algorithm — the protocol whose
//! performance the DSN 2002 paper analyzes — plus an atomic-broadcast
//! layer built on it (the paper's motivating application, §2.3).
//!
//! # The algorithm (paper §2.1)
//!
//! Consensus is defined over `n` processes, each proposing an initial
//! value; all correct processes must decide the same proposed value.
//! The Chandra–Toueg algorithm assumes the asynchronous model augmented
//! with an unreliable failure detector of class ◇S and a majority of
//! correct processes. It proceeds in asynchronous *rounds* under the
//! rotating-coordinator paradigm; each round has four phases:
//!
//! 1. every process sends its current estimate (with the round number
//!    in which it was last updated) to the round's coordinator;
//! 2. the coordinator gathers a majority of estimates and selects the
//!    one with the highest timestamp as its proposal, which it sends to
//!    all participants;
//! 3. each participant either receives the proposal and replies with a
//!    positive acknowledgement, or — if its failure detector suspects
//!    the coordinator — replies with a negative acknowledgement;
//! 4. the coordinator gathers a majority of (n)acks: all positive means
//!    it reliably broadcasts the decision; any negative means the next
//!    round starts with the next coordinator.
//!
//! The decision is disseminated with a lazy reliable broadcast: the
//! first `Decide` a process receives is adopted and relayed once.
//!
//! [`CtConsensus`] is the event-driven protocol engine;
//! [`ConsensusNode`] packages it with a pluggable failure detector as a
//! runnable [`ctsim_neko::Node`]; [`abcast`] implements atomic broadcast
//! by transformation to consensus.

pub mod abcast;
pub mod consensus;
pub mod node;

pub use consensus::{ConsensusMsg, CtConsensus, Phase};
pub use node::ConsensusNode;
