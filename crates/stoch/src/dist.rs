//! Distribution families for timed activities and delay models.
//!
//! These are the families UltraSAN supports for timed activities
//! (deterministic, exponential, uniform, Weibull, Erlang) plus the
//! two-component uniform mixture ("bimodal") the paper fits to measured
//! end-to-end message delays in §5.1.
//!
//! All values are **milliseconds**.

use crate::rng::SimRng;

/// A probability distribution over non-negative durations (milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// A point mass at `value`. Variance 0.
    Det(f64),
    /// Exponential with the given mean (not rate).
    Exp { mean: f64 },
    /// Uniform on `[lo, hi]`.
    Uniform { lo: f64, hi: f64 },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull { shape: f64, scale: f64 },
    /// Erlang: sum of `k` iid exponentials with total mean `mean`.
    Erlang { k: u32, mean: f64 },
    /// Two-component uniform mixture: with probability `p1` draw from
    /// `U[lo1, hi1]`, otherwise from `U[lo2, hi2]`.
    ///
    /// This is the "bi-modal" fit of the paper's §5.1, e.g. unicast
    /// end-to-end delay `U[0.1,0.13]` w.p. 0.8 and `U[0.145,0.35]`
    /// w.p. 0.2.
    Bimodal {
        /// Probability of the first (fast) mode.
        p1: f64,
        /// First mode bounds.
        lo1: f64,
        /// First mode upper bound.
        hi1: f64,
        /// Second mode bounds.
        lo2: f64,
        /// Second mode upper bound.
        hi2: f64,
    },
    /// `base + jitter`: a deterministic offset plus another distribution.
    Shifted {
        /// Deterministic part.
        base: f64,
        /// Stochastic part.
        jitter: Box<Dist>,
    },
    /// A hyper-Erlang mixture: branch `i` is an Erlang of
    /// `branches[i].stages` stages at rate `branches[i].rate`, taken
    /// with probability `branches[i].prob`.
    ///
    /// This is the *sampling* form of a [`crate::PhaseType`] (see
    /// [`crate::PhaseType::to_dist`]): it lets the simulator draw from
    /// exactly the distribution the analytic solver expands, so the
    /// two engines can be cross-validated on the identical stochastic
    /// model with no phase-type approximation error in between.
    HyperErlang {
        /// The Erlang branches of the mixture (probs sum to 1).
        branches: Vec<crate::phase::PhBranch>,
    },
}

impl Dist {
    /// Convenience constructor for the paper's bimodal fit.
    ///
    /// # Panics
    /// Panics if the parameters are out of order or `p1` outside `[0,1]`.
    pub fn bimodal(p1: f64, m1: (f64, f64), m2: (f64, f64)) -> Dist {
        assert!((0.0..=1.0).contains(&p1), "p1 must be a probability");
        assert!(m1.0 <= m1.1 && m2.0 <= m2.1, "mode bounds out of order");
        Dist::Bimodal {
            p1,
            lo1: m1.0,
            hi1: m1.1,
            lo2: m2.0,
            hi2: m2.1,
        }
    }

    /// A deterministic `base` plus `jitter`.
    pub fn shifted(base: f64, jitter: Dist) -> Dist {
        Dist::Shifted {
            base,
            jitter: Box::new(jitter),
        }
    }

    /// Draws one sample (milliseconds, always `>= 0`).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let v = match *self {
            Dist::Det(v) => v,
            Dist::Exp { mean } => {
                // Inverse CDF; `1 - unit()` avoids ln(0).
                -mean * (1.0 - rng.unit()).ln()
            }
            Dist::Uniform { lo, hi } => rng.uniform(lo, hi),
            Dist::Weibull { shape, scale } => {
                let u = 1.0 - rng.unit();
                scale * (-u.ln()).powf(1.0 / shape)
            }
            Dist::Erlang { k, mean } => {
                let stage_mean = mean / k.max(1) as f64;
                (0..k.max(1))
                    .map(|_| -stage_mean * (1.0 - rng.unit()).ln())
                    .sum()
            }
            Dist::Bimodal {
                p1,
                lo1,
                hi1,
                lo2,
                hi2,
            } => {
                if rng.chance(p1) {
                    rng.uniform(lo1, hi1)
                } else {
                    rng.uniform(lo2, hi2)
                }
            }
            Dist::Shifted { base, ref jitter } => base + jitter.sample(rng),
            Dist::HyperErlang { ref branches } => {
                let mut pick = rng.unit();
                let branch = branches
                    .iter()
                    .find(|b| {
                        pick -= b.prob;
                        pick < 0.0
                    })
                    .or(branches.last())
                    .expect("hyper-Erlang has at least one branch");
                (0..branch.stages)
                    .map(|_| -(1.0 - rng.unit()).ln() / branch.rate)
                    .sum()
            }
        };
        v.max(0.0)
    }

    /// The exact mean of the distribution (milliseconds).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Det(v) => v,
            Dist::Exp { mean } => mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Weibull { shape, scale } => scale * gamma(1.0 + 1.0 / shape),
            Dist::Erlang { mean, .. } => mean,
            Dist::Bimodal {
                p1,
                lo1,
                hi1,
                lo2,
                hi2,
            } => p1 * 0.5 * (lo1 + hi1) + (1.0 - p1) * 0.5 * (lo2 + hi2),
            Dist::Shifted { base, ref jitter } => base + jitter.mean(),
            Dist::HyperErlang { ref branches } => branches.iter().map(|b| b.prob * b.mean()).sum(),
        }
    }

    /// The exact variance of the distribution (ms²).
    pub fn variance(&self) -> f64 {
        match *self {
            Dist::Det(_) => 0.0,
            Dist::Exp { mean } => mean * mean,
            Dist::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Dist::Weibull { shape, scale } => {
                let g1 = gamma(1.0 + 1.0 / shape);
                let g2 = gamma(1.0 + 2.0 / shape);
                scale * scale * (g2 - g1 * g1)
            }
            Dist::Erlang { k, mean } => mean * mean / k.max(1) as f64,
            Dist::Bimodal {
                p1,
                lo1,
                hi1,
                lo2,
                hi2,
            } => {
                // E[X²] of U[a,b] is (a² + ab + b²)/3.
                let m2 = |lo: f64, hi: f64| (lo * lo + lo * hi + hi * hi) / 3.0;
                let second = p1 * m2(lo1, hi1) + (1.0 - p1) * m2(lo2, hi2);
                let mean = self.mean();
                (second - mean * mean).max(0.0)
            }
            // A deterministic shift leaves the variance untouched.
            Dist::Shifted { ref jitter, .. } => jitter.variance(),
            Dist::HyperErlang { ref branches } => {
                let second: f64 = branches.iter().map(|b| b.prob * b.second_moment()).sum();
                let mean = self.mean();
                (second - mean * mean).max(0.0)
            }
        }
    }

    /// The squared coefficient of variation `Var(X)/E[X]²` (0 for
    /// deterministic, 1 for exponential; NaN when the mean is 0).
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// The cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        match *self {
            Dist::Det(v) => {
                if x >= v {
                    1.0
                } else {
                    0.0
                }
            }
            Dist::Exp { mean } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            Dist::Uniform { lo, hi } => {
                if x <= lo {
                    0.0
                } else if x >= hi {
                    1.0
                } else {
                    (x - lo) / (hi - lo)
                }
            }
            Dist::Weibull { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-(x / scale).powf(shape)).exp()
                }
            }
            Dist::Erlang { k, mean } => {
                // F(x) = 1 - e^{-lx} * sum_{i<k} (lx)^i / i!
                let k = k.max(1);
                if x <= 0.0 {
                    return 0.0;
                }
                let lambda = k as f64 / mean;
                let lx = lambda * x;
                let mut term = 1.0;
                let mut sum = 1.0;
                for i in 1..k {
                    term *= lx / i as f64;
                    sum += term;
                }
                1.0 - (-lx).exp() * sum
            }
            Dist::Bimodal {
                p1,
                lo1,
                hi1,
                lo2,
                hi2,
            } => {
                let u = |lo: f64, hi: f64| {
                    if x <= lo {
                        0.0
                    } else if x >= hi {
                        1.0
                    } else {
                        (x - lo) / (hi - lo)
                    }
                };
                p1 * u(lo1, hi1) + (1.0 - p1) * u(lo2, hi2)
            }
            Dist::Shifted { base, ref jitter } => jitter.cdf(x - base),
            Dist::HyperErlang { ref branches } => branches
                .iter()
                .map(|b| {
                    b.prob
                        * Dist::Erlang {
                            k: b.stages,
                            mean: b.mean(),
                        }
                        .cdf(x)
                })
                .sum(),
        }
    }

    /// Scales the distribution by a positive factor (useful to derive a
    /// broadcast delay from a unicast fit).
    ///
    /// # Panics
    /// Panics if `f` is not positive and finite.
    pub fn scaled(&self, f: f64) -> Dist {
        assert!(f.is_finite() && f > 0.0, "scale factor must be positive");
        match *self {
            Dist::Det(v) => Dist::Det(v * f),
            Dist::Exp { mean } => Dist::Exp { mean: mean * f },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * f,
                hi: hi * f,
            },
            Dist::Weibull { shape, scale } => Dist::Weibull {
                shape,
                scale: scale * f,
            },
            Dist::Erlang { k, mean } => Dist::Erlang { k, mean: mean * f },
            Dist::Bimodal {
                p1,
                lo1,
                hi1,
                lo2,
                hi2,
            } => Dist::Bimodal {
                p1,
                lo1: lo1 * f,
                hi1: hi1 * f,
                lo2: lo2 * f,
                hi2: hi2 * f,
            },
            Dist::Shifted { base, ref jitter } => Dist::Shifted {
                base: base * f,
                jitter: Box::new(jitter.scaled(f)),
            },
            // Scaling an Erlang mixture scales every stage's mean,
            // i.e. divides every rate by the factor.
            Dist::HyperErlang { ref branches } => Dist::HyperErlang {
                branches: branches
                    .iter()
                    .map(|b| crate::phase::PhBranch {
                        prob: b.prob,
                        stages: b.stages,
                        rate: b.rate / f,
                    })
                    .collect(),
            },
        }
    }

    /// Shifts the distribution left by `delta` (subtracting a constant),
    /// clamping the deterministic part at zero. Used to derive `t_network`
    /// from end-to-end delay minus `2·t_send` as in the paper's §5.1.
    pub fn minus_const(&self, delta: f64) -> Dist {
        match *self {
            Dist::Det(v) => Dist::Det((v - delta).max(0.0)),
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: (lo - delta).max(0.0),
                hi: (hi - delta).max(0.0),
            },
            Dist::Bimodal {
                p1,
                lo1,
                hi1,
                lo2,
                hi2,
            } => Dist::Bimodal {
                p1,
                lo1: (lo1 - delta).max(0.0),
                hi1: (hi1 - delta).max(0.0),
                lo2: (lo2 - delta).max(0.0),
                hi2: (hi2 - delta).max(0.0),
            },
            Dist::Shifted { base, ref jitter } => Dist::Shifted {
                base: (base - delta).max(0.0),
                jitter: jitter.clone(),
            },
            // Families with unbounded lower support (Exp, Weibull,
            // Erlang, hyper-Erlang) cannot be left-shifted-and-clamped
            // inside the `Dist` algebra; the old catch-all recursed
            // forever here. Make the gap loud instead of a hang.
            ref other => panic!("minus_const is not defined for {other:?}"),
        }
    }
}

/// Lanczos approximation of the gamma function, needed for Weibull means.
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 coefficients (Boost/Numerical Recipes standard set).
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn det_is_constant() {
        let d = Dist::Det(0.18);
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.18);
        }
        assert_eq!(d.mean(), 0.18);
    }

    #[test]
    fn exp_mean_matches() {
        let d = Dist::Exp { mean: 2.5 };
        let m = sample_mean(&d, 200_000, 2);
        assert!((m - 2.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 1.0, hi: 3.0 };
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=3.0).contains(&x));
        }
        assert_eq!(d.mean(), 2.0);
        let m = sample_mean(&d, 100_000, 4);
        assert!((m - 2.0).abs() < 0.02);
    }

    #[test]
    fn hyper_erlang_moments_cdf_and_sampling_agree() {
        // 30 % Erlang(2) at rate 4/ms, 70 % Erlang(5) at rate 10/ms.
        let d = Dist::HyperErlang {
            branches: vec![
                crate::phase::PhBranch {
                    prob: 0.3,
                    stages: 2,
                    rate: 4.0,
                },
                crate::phase::PhBranch {
                    prob: 0.7,
                    stages: 5,
                    rate: 10.0,
                },
            ],
        };
        let mean = 0.3 * 0.5 + 0.7 * 0.5;
        assert!((d.mean() - mean).abs() < 1e-12);
        // E[X²] = Σ p·k(k+1)/rate².
        let second = 0.3 * 6.0 / 16.0 + 0.7 * 30.0 / 100.0;
        assert!((d.variance() - (second - mean * mean)).abs() < 1e-12);
        let m = sample_mean(&d, 100_000, 7);
        assert!((m - mean).abs() < 0.01, "sampled mean {m}");
        // CDF is a proper distribution function and matches the
        // scaled version's rescaling.
        let mut prev = 0.0;
        for i in 0..300 {
            let c = d.cdf(i as f64 * 0.01);
            assert!((0.0..=1.0).contains(&c) && c >= prev);
            prev = c;
        }
        let s = d.scaled(2.0);
        assert!((s.mean() - 2.0 * mean).abs() < 1e-12);
        assert!((s.cdf(1.0) - d.cdf(0.5)).abs() < 1e-12);
    }

    #[test]
    fn weibull_shape_one_is_exponential_mean() {
        let d = Dist::Weibull {
            shape: 1.0,
            scale: 2.0,
        };
        assert!((d.mean() - 2.0).abs() < 1e-9);
        let m = sample_mean(&d, 200_000, 5);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn weibull_mean_uses_gamma() {
        // shape 2, scale 1: mean = Γ(1.5) = sqrt(pi)/2 ≈ 0.8862
        let d = Dist::Weibull {
            shape: 2.0,
            scale: 1.0,
        };
        assert!((d.mean() - 0.886_226_925).abs() < 1e-6);
    }

    #[test]
    fn erlang_mean_and_lower_variance_than_exp() {
        let d = Dist::Erlang { k: 4, mean: 2.0 };
        let m = sample_mean(&d, 100_000, 6);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        // Variance of Erlang(k) is mean^2/k, lower than Exp's mean^2.
        let mut rng = SimRng::new(7);
        let n = 100_000;
        let var: f64 = (0..n)
            .map(|_| {
                let x = d.sample(&mut rng);
                (x - 2.0) * (x - 2.0)
            })
            .sum::<f64>()
            / n as f64;
        assert!(var < 1.5, "var {var} should be ~1.0");
    }

    #[test]
    fn bimodal_matches_paper_fit() {
        // The paper's unicast fit: U[0.1,0.13] w.p. 0.8; U[0.145,0.35] w.p. 0.2.
        let d = Dist::bimodal(0.8, (0.1, 0.13), (0.145, 0.35));
        assert!((d.mean() - (0.8 * 0.115 + 0.2 * 0.2475)).abs() < 1e-12);
        let mut rng = SimRng::new(8);
        let mut fast = 0;
        let n = 50_000;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((0.1..=0.35).contains(&x), "sample {x} outside support");
            assert!(
                !(0.13..0.145).contains(&x),
                "sample {x} in the inter-mode gap"
            );
            if x <= 0.13 {
                fast += 1;
            }
        }
        let p = fast as f64 / n as f64;
        assert!((p - 0.8).abs() < 0.01, "fast-mode fraction {p}");
    }

    #[test]
    fn shifted_adds_base() {
        let d = Dist::shifted(1.0, Dist::Uniform { lo: 0.0, hi: 0.5 });
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1.5).contains(&x));
        }
        assert!((d.mean() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn scaled_scales_mean() {
        let d = Dist::bimodal(0.5, (1.0, 2.0), (3.0, 5.0)).scaled(2.0);
        assert!((d.mean() - 2.0 * (0.5 * 1.5 + 0.5 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn minus_const_shifts_support() {
        let d = Dist::bimodal(0.8, (0.1, 0.13), (0.145, 0.35)).minus_const(0.05);
        let mut rng = SimRng::new(10);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((0.05..=0.30).contains(&x), "{x}");
        }
        let d2 = Dist::Det(0.03).minus_const(0.05);
        assert_eq!(d2.mean(), 0.0);
    }

    #[test]
    fn samples_never_negative() {
        let dists = [
            Dist::Exp { mean: 0.001 },
            Dist::Uniform { lo: 0.0, hi: 0.0 },
            Dist::Det(0.0),
            Dist::shifted(0.0, Dist::Exp { mean: 1.0 }),
        ];
        let mut rng = SimRng::new(11);
        for d in &dists {
            for _ in 0..100 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn cdf_matches_closed_forms() {
        let u = Dist::Uniform { lo: 1.0, hi: 3.0 };
        assert_eq!(u.cdf(0.0), 0.0);
        assert_eq!(u.cdf(2.0), 0.5);
        assert_eq!(u.cdf(5.0), 1.0);
        let e = Dist::Exp { mean: 2.0 };
        assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let d = Dist::Det(1.5);
        assert_eq!(d.cdf(1.49), 0.0);
        assert_eq!(d.cdf(1.5), 1.0);
        let b = Dist::bimodal(0.8, (0.1, 0.13), (0.145, 0.35));
        assert_eq!(b.cdf(0.05), 0.0);
        assert!((b.cdf(0.13) - 0.8).abs() < 1e-12);
        assert!((b.cdf(0.14) - 0.8).abs() < 1e-12, "inter-mode plateau");
        assert_eq!(b.cdf(0.4), 1.0);
        let s = Dist::shifted(1.0, Dist::Uniform { lo: 0.0, hi: 1.0 });
        assert!((s.cdf(1.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_agrees_with_sampling() {
        let dists = [
            Dist::Exp { mean: 1.3 },
            Dist::Erlang { k: 3, mean: 2.0 },
            Dist::Weibull {
                shape: 1.7,
                scale: 0.8,
            },
            Dist::bimodal(0.6, (0.0, 1.0), (2.0, 3.0)),
        ];
        let mut rng = SimRng::new(21);
        for d in &dists {
            let n = 40_000;
            for x in [0.3f64, 0.9, 1.8, 2.6] {
                let emp = (0..n).filter(|_| d.sample(&mut rng) <= x).count() as f64 / n as f64;
                let thy = d.cdf(x);
                assert!(
                    (emp - thy).abs() < 0.015,
                    "{d:?} at {x}: empirical {emp} vs cdf {thy}"
                );
            }
        }
    }

    #[test]
    fn erlang_cdf_is_monotone_and_proper() {
        let d = Dist::Erlang { k: 4, mean: 2.0 };
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert!(d.cdf(100.0) > 0.999999);
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma(4.0) - 6.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }
}
