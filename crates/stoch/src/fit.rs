//! Fitting measured delay samples with the paper's bimodal-uniform model.
//!
//! §5.1 of the paper approximates the measured end-to-end delay CDFs
//! "by using uniform distributions in a bi-modal fashion", e.g. for
//! unicast messages `U[0.1, 0.13]` with probability 0.8 and
//! `U[0.145, 0.35]` with probability 0.2.
//!
//! [`fit_bimodal_uniform`] automates that eyeball fit: it finds the
//! largest gap between consecutive order statistics in the central region
//! of the sample (the "knee" between the two modes), splits there, and
//! fits each mode with a uniform distribution spanning robust quantiles
//! of the sub-sample.

use crate::dist::Dist;
use crate::stats::Ecdf;

/// The result of a bimodal-uniform fit.
#[derive(Debug, Clone, PartialEq)]
pub struct BimodalFit {
    /// The fitted distribution.
    pub dist: Dist,
    /// Probability mass assigned to the first (fast) mode.
    pub p1: f64,
    /// Where the sample was split (ms).
    pub split_at: f64,
}

/// Fits a two-mode uniform mixture to delay samples (milliseconds).
///
/// The split point is the midpoint of the widest gap between consecutive
/// sorted samples, searched between the 40 % and 98 % quantiles so that
/// neither tail noise nor the main mode's interior can be mistaken for
/// the inter-mode gap. Each mode is then fit as `U[q01, q99]` of its
/// sub-sample (robust to stragglers).
///
/// When no meaningful inter-mode gap exists (a fast mode with a
/// contiguous tail), the sample is split at the 80th percentile with
/// the paper's 0.8/0.2 mode proportions; with fewer than 16 samples a
/// single uniform over `[q01, q99]` is returned (`p1 = 1`).
///
/// # Panics
/// Panics if `samples` is empty or contains NaN.
pub fn fit_bimodal_uniform(samples: &[f64]) -> BimodalFit {
    assert!(!samples.is_empty(), "cannot fit an empty sample");
    // Far outliers (stop-the-world pauses hitting a ping) sit orders of
    // magnitude above the delay body and would drag the slow mode's
    // upper bound with them. The paper's eyeball fit reads the visible
    // CDF and ignores that sub-percent mass; we drop samples beyond
    // 10x the median, unless that would remove a real tail (>10%).
    let ecdf_all = Ecdf::new(samples.to_vec());
    let cutoff = 10.0 * ecdf_all.quantile(0.5);
    let kept: Vec<f64> = samples.iter().copied().filter(|&x| x <= cutoff).collect();
    let samples: &[f64] = if kept.len() * 10 >= samples.len() * 9 {
        &kept
    } else {
        samples
    };
    let ecdf = Ecdf::new(samples.to_vec());
    let sorted = ecdf.samples();
    let n = sorted.len();

    let single = |ecdf: &Ecdf| {
        let lo = ecdf.quantile(0.01);
        let hi = ecdf.quantile(0.99).max(lo + f64::MIN_POSITIVE);
        BimodalFit {
            dist: Dist::bimodal(1.0, (lo, hi), (hi, hi)),
            p1: 1.0,
            split_at: hi,
        }
    };
    // Gapless mixtures (a fast mode with a contiguous tail) are fitted
    // with the paper's 0.8/0.2 proportions: mode 1 spans [q01, q79],
    // mode 2 spans [q81, q99]. A genuinely uniform sample is also
    // represented faithfully by this split.
    let q80_split = |ecdf: &Ecdf| {
        let m1 = (ecdf.quantile(0.01), ecdf.quantile(0.79));
        let lo2 = ecdf.quantile(0.81).max(m1.1);
        let m2 = (lo2, ecdf.quantile(0.99).max(lo2));
        BimodalFit {
            dist: Dist::bimodal(0.8, m1, m2),
            p1: 0.8,
            split_at: ecdf.quantile(0.80),
        }
    };
    if n < 16 {
        return single(&ecdf);
    }

    // Search for the widest inter-sample gap in the central region.
    let i_lo = (0.40 * n as f64) as usize;
    let i_hi = ((0.98 * n as f64) as usize).min(n - 1);
    let mut best_gap = 0.0;
    let mut best_i = 0;
    for i in i_lo..i_hi {
        let gap = sorted[i + 1] - sorted[i];
        if gap > best_gap {
            best_gap = gap;
            best_i = i;
        }
    }
    let span = (sorted[n - 1] - sorted[0]).max(f64::MIN_POSITIVE);
    // A "meaningful" gap: at least 5% of the sample span.
    if best_gap < 0.05 * span {
        return q80_split(&ecdf);
    }
    let split_at = 0.5 * (sorted[best_i] + sorted[best_i + 1]);
    let (fast, slow) = (&sorted[..=best_i], &sorted[best_i + 1..]);
    let p1 = fast.len() as f64 / n as f64;

    let fast_e = Ecdf::new(fast.to_vec());
    let slow_e = Ecdf::new(slow.to_vec());
    let m1 = (fast_e.quantile(0.01), fast_e.quantile(0.99));
    let m2 = (slow_e.quantile(0.01), slow_e.quantile(0.99));
    BimodalFit {
        dist: Dist::bimodal(p1, m1, (m2.0.max(m1.1), m2.1.max(m2.0.max(m1.1)))),
        p1,
        split_at,
    }
}

/// The Kolmogorov–Smirnov statistic `sup_x |F_emp(x) − F(x)|` between a
/// sample and a reference distribution: a quantitative goodness-of-fit
/// measure for the bimodal fits (the paper judged fit quality visually
/// on the CDF plots).
///
/// # Panics
/// Panics if `samples` is empty or contains NaN.
pub fn ks_statistic(samples: &[f64], dist: &Dist) -> f64 {
    assert!(!samples.is_empty(), "KS statistic of an empty sample");
    let ecdf = Ecdf::new(samples.to_vec());
    let sorted = ecdf.samples();
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let above = ((i + 1) as f64 / n - f).abs();
        let below = (i as f64 / n - f).abs();
        d = d.max(above).max(below);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn recovers_paper_like_bimodal() {
        // Generate from the paper's unicast fit and re-fit.
        let truth = Dist::bimodal(0.8, (0.10, 0.13), (0.145, 0.35));
        let mut rng = SimRng::new(42);
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_bimodal_uniform(&samples);
        assert!((fit.p1 - 0.8).abs() < 0.02, "p1 = {}", fit.p1);
        assert!(
            (0.13..0.145).contains(&fit.split_at),
            "split at {}",
            fit.split_at
        );
        match fit.dist {
            Dist::Bimodal {
                lo1, hi1, lo2, hi2, ..
            } => {
                assert!((lo1 - 0.10).abs() < 0.005, "lo1 {lo1}");
                assert!((hi1 - 0.13).abs() < 0.005, "hi1 {hi1}");
                assert!((lo2 - 0.145).abs() < 0.01, "lo2 {lo2}");
                assert!((hi2 - 0.35).abs() < 0.02, "hi2 {hi2}");
            }
            other => panic!("expected bimodal, got {other:?}"),
        }
        // Fitted mean close to the true mean.
        assert!((fit.dist.mean() - truth.mean()).abs() < 0.01);
    }

    #[test]
    fn unimodal_sample_gets_faithful_two_piece_fit() {
        let truth = Dist::Uniform { lo: 1.0, hi: 2.0 };
        let mut rng = SimRng::new(7);
        let samples: Vec<f64> = (0..5_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_bimodal_uniform(&samples);
        assert_eq!(fit.p1, 0.8, "gapless fallback uses the 0.8/0.2 split");
        assert!((fit.dist.mean() - 1.5).abs() < 0.05);
    }

    #[test]
    fn gapless_heavy_tail_fit_preserves_mean() {
        // A fast mode with a contiguous tail (no inter-mode gap), like
        // the simulated cluster's receive-path delays.
        let truth = Dist::bimodal(0.8, (0.10, 0.13), (0.13, 0.35));
        let mut rng = SimRng::new(9);
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_bimodal_uniform(&samples);
        assert!(
            (fit.dist.mean() - truth.mean()).abs() < 0.02,
            "fit mean {} vs true {}",
            fit.dist.mean(),
            truth.mean()
        );
    }

    #[test]
    fn tiny_sample_falls_back() {
        let fit = fit_bimodal_uniform(&[1.0, 1.1, 1.2]);
        assert_eq!(fit.p1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = fit_bimodal_uniform(&[]);
    }

    #[test]
    fn ks_statistic_small_for_true_distribution() {
        let truth = Dist::bimodal(0.8, (0.10, 0.13), (0.145, 0.35));
        let mut rng = SimRng::new(4);
        let samples: Vec<f64> = (0..10_000).map(|_| truth.sample(&mut rng)).collect();
        let d_true = ks_statistic(&samples, &truth);
        assert!(d_true < 0.02, "KS vs own distribution: {d_true}");
        // A clearly wrong reference scores much worse.
        let wrong = Dist::Uniform { lo: 0.0, hi: 1.0 };
        let d_wrong = ks_statistic(&samples, &wrong);
        assert!(d_wrong > 0.3, "KS vs wrong distribution: {d_wrong}");
        assert!(d_wrong > 5.0 * d_true);
    }

    #[test]
    fn fitted_distribution_passes_ks_screen() {
        // The automated fit must be close (in KS distance) to the
        // sample it was fitted on.
        let truth = Dist::bimodal(0.8, (0.10, 0.13), (0.145, 0.35));
        let mut rng = SimRng::new(6);
        let samples: Vec<f64> = (0..10_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_bimodal_uniform(&samples);
        let d = ks_statistic(&samples, &fit.dist);
        assert!(d < 0.05, "fit KS distance {d}");
    }
}
