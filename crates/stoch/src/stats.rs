//! Statistics used by the measurement and simulation campaigns.
//!
//! * [`OnlineStats`] — Welford's online mean/variance with Student-t
//!   confidence intervals (the paper reports 90 % CIs on latency means).
//! * [`Ecdf`] — empirical CDFs for the latency/delay distribution figures.
//! * [`Histogram`] — fixed-bin histograms for diagnostics.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the two-sided Student-t confidence interval for the
    /// mean at the given confidence level (e.g. `0.90`).
    ///
    /// Returns 0 for fewer than two observations.
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = student_t_quantile(confidence, self.n - 1);
        t * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Two-sided Student-t quantile for the given confidence and degrees of
/// freedom. Table-based for the confidence levels used in the study
/// (0.90, 0.95, 0.99); interpolated over df and falling back to the
/// normal quantile for large df.
pub fn student_t_quantile(confidence: f64, df: u64) -> f64 {
    // Rows: df 1..=30, then 40, 60, 120, inf. Columns: 90%, 95%, 99%.
    const TABLE: &[(u64, [f64; 3])] = &[
        (1, [6.314, 12.706, 63.657]),
        (2, [2.920, 4.303, 9.925]),
        (3, [2.353, 3.182, 5.841]),
        (4, [2.132, 2.776, 4.604]),
        (5, [2.015, 2.571, 4.032]),
        (6, [1.943, 2.447, 3.707]),
        (7, [1.895, 2.365, 3.499]),
        (8, [1.860, 2.306, 3.355]),
        (9, [1.833, 2.262, 3.250]),
        (10, [1.812, 2.228, 3.169]),
        (12, [1.782, 2.179, 3.055]),
        (15, [1.753, 2.131, 2.947]),
        (20, [1.725, 2.086, 2.845]),
        (25, [1.708, 2.060, 2.787]),
        (30, [1.697, 2.042, 2.750]),
        (40, [1.684, 2.021, 2.704]),
        (60, [1.671, 2.000, 2.660]),
        (120, [1.658, 1.980, 2.617]),
        (u64::MAX, [1.645, 1.960, 2.576]),
    ];
    let col = if (confidence - 0.90).abs() < 1e-9 {
        0
    } else if (confidence - 0.95).abs() < 1e-9 {
        1
    } else if (confidence - 0.99).abs() < 1e-9 {
        2
    } else {
        // Nearest supported level; the study only uses the three above.
        if confidence < 0.925 {
            0
        } else if confidence < 0.97 {
            1
        } else {
            2
        }
    };
    let mut prev = TABLE[0];
    for &row in TABLE {
        if df <= row.0 {
            if row.0 == df || row.0 == u64::MAX || prev.0 == row.0 {
                return row.1[col];
            }
            // Linear interpolation in 1/df, the standard approach.
            let (d0, v0) = (prev.0 as f64, prev.1[col]);
            let (d1, v1) = (row.0 as f64, row.1[col]);
            let w = (1.0 / df as f64 - 1.0 / d1) / (1.0 / d0 - 1.0 / d1);
            return v1 + w * (v0 - v1);
        }
        prev = row;
    }
    TABLE.last().unwrap().1[col]
}

/// Batch-means estimator for steady-state simulation output.
///
/// Correlated observations from one long run (e.g. per-event rewards)
/// violate the independence assumption behind [`OnlineStats`]'s
/// confidence intervals; grouping consecutive observations into batches
/// and treating batch means as independent samples is the classic
/// remedy (used by UltraSAN's steady-state simulator).
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_n: usize,
    batches: OnlineStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batches: OnlineStats::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Student-t CI half-width over batch means.
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        self.batches.ci_half_width(confidence)
    }
}

/// An empirical cumulative distribution function built from samples.
///
/// Used to regenerate the CDF figures (Figs. 6, 7a, 7b of the paper).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. NaNs are rejected.
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`), by linear interpolation.
    ///
    /// # Panics
    /// Panics if the ECDF is empty or `q` outside `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= n {
            self.sorted[n - 1]
        } else {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        }
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Minimum sample.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty ECDF")
    }

    /// Maximum sample.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty ECDF")
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF on a uniform grid of `points` x-values spanning
    /// the sample range: the series plotted in the paper's CDF figures.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|i| {
                let x = lo + span * i as f64 / (points - 1).max(1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci_half_width(0.90), 0.0);
        assert!(s.min().is_nan());
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci_half_width(0.90), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..37].iter().copied().collect();
        let b: OnlineStats = all[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 3);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn t_quantiles_match_tables() {
        assert!((student_t_quantile(0.90, 1) - 6.314).abs() < 1e-9);
        assert!((student_t_quantile(0.95, 10) - 2.228).abs() < 1e-9);
        assert!((student_t_quantile(0.99, 30) - 2.750).abs() < 1e-9);
        // Large df approaches the normal quantile.
        assert!((student_t_quantile(0.90, 1_000_000) - 1.645).abs() < 0.01);
        // Interpolation is monotone between rows.
        let t13 = student_t_quantile(0.90, 13);
        assert!(t13 < student_t_quantile(0.90, 12));
        assert!(t13 > student_t_quantile(0.90, 15));
    }

    #[test]
    fn ci_half_width_shrinks_with_n() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut rng = crate::SimRng::new(1);
        for i in 0..10_000 {
            let x = rng.unit();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        assert!(large.ci_half_width(0.90) < small.ci_half_width(0.90));
    }

    #[test]
    fn ecdf_at_and_quantile() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(1.0), 0.25);
        assert_eq!(e.at(2.5), 0.5);
        assert_eq!(e.at(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert!((e.quantile(0.5) - 2.5).abs() < 1e-12);
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let mut rng = crate::SimRng::new(2);
        let samples: Vec<f64> = (0..1000).map(|_| rng.unit() * 3.0).collect();
        let e = Ecdf::new(samples);
        let series = e.series(50);
        assert_eq!(series.len(), 50);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn batch_means_reduces_to_plain_mean() {
        let mut bm = BatchMeans::new(10);
        let mut plain = OnlineStats::new();
        let mut rng = crate::SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.unit();
            bm.push(x);
            plain.push(x);
        }
        assert_eq!(bm.batches(), 100);
        assert!((bm.mean() - plain.mean()).abs() < 1e-12);
    }

    #[test]
    fn batch_means_ci_honest_for_correlated_series() {
        // A strongly autocorrelated AR(1)-ish series: naive per-sample
        // CIs are overconfident; batch means with large batches give a
        // wider (more honest) interval.
        let mut rng = crate::SimRng::new(5);
        let mut x = 0.0f64;
        let mut naive = OnlineStats::new();
        let mut bm = BatchMeans::new(200);
        for _ in 0..20_000 {
            x = 0.98 * x + rng.unit() - 0.5;
            naive.push(x);
            bm.push(x);
        }
        assert!(bm.batches() >= 50);
        assert!(
            bm.ci_half_width(0.90) > 2.0 * naive.ci_half_width(0.90),
            "batch CI {} should exceed naive CI {}",
            bm.ci_half_width(0.90),
            naive.ci_half_width(0.90)
        );
    }

    #[test]
    fn incomplete_batch_is_not_counted() {
        let mut bm = BatchMeans::new(4);
        for i in 0..7 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batches(), 1);
        assert!((bm.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        h.record(25.0);
        assert_eq!(h.counts(), &[1u64; 10][..]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 13);
    }
}
