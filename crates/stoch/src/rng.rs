//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulators draws from its own
//! substream derived from a single experiment seed, so that adding a new
//! component does not perturb the draws of existing ones (common random
//! numbers across model variants).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable, splittable RNG for simulations.
///
/// Wraps [`SmallRng`]; determinism of a run depends only on the seed and
/// the sequence of draws.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream identified by `label`.
    ///
    /// The derivation is a SplitMix64-style hash of `(seed, label)`, so
    /// substreams are stable across runs and independent of the draw
    /// position of the parent stream.
    pub fn substream(&self, label: u64) -> SimRng {
        SimRng::new(mix(self.seed, label))
    }

    /// Derives a substream from a string label (e.g. a component name).
    pub fn substream_named(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.substream(h)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi})");
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn mix(a: u64, b: u64) -> u64 {
    // SplitMix64 finalizer over the xor of the inputs with distinct
    // multiplicative constants; good avalanche, cheap, stable.
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_stable_and_independent_of_parent_position() {
        let parent = SimRng::new(7);
        let mut s1 = parent.substream(3);
        let mut parent2 = SimRng::new(7);
        // Draw from the parent before splitting: substream must not change.
        let _ = parent2.next_u64();
        let mut s2 = parent2.substream(3);
        for _ in 0..32 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn named_substreams_differ_by_name() {
        let parent = SimRng::new(7);
        let mut a = parent.substream_named("network");
        let mut b = parent.substream_named("cpu");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(r.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn unit_mean_is_about_half() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
