//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulators draws from its own
//! substream derived from a single experiment seed, so that adding a new
//! component does not perturb the draws of existing ones (common random
//! numbers across model variants).
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! state-seeded through SplitMix64 — no external crates, so the
//! workspace builds in offline environments. Determinism of a run
//! depends only on the seed and the sequence of draws.

/// A seedable, splittable RNG for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state; the
        // zero state is unreachable this way.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream identified by `label`.
    ///
    /// The derivation is a SplitMix64-style hash of `(seed, label)`, so
    /// substreams are stable across runs and independent of the draw
    /// position of the parent stream.
    pub fn substream(&self, label: u64) -> SimRng {
        SimRng::new(mix(self.seed, label))
    }

    /// Derives a substream from a string label (e.g. a component name).
    pub fn substream_named(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.substream(h)
    }

    /// The next raw 64-bit draw (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit draw (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        let x = lo + (hi - lo) * self.unit();
        // Floating rounding can land exactly on `hi`; keep the interval
        // half-open as documented.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Lemire's multiply-shift range reduction (bias < 2^-64 * n).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }
}

fn mix(a: u64, b: u64) -> u64 {
    // SplitMix64 finalizer over the xor of the inputs with distinct
    // multiplicative constants; good avalanche, cheap, stable.
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_stable_and_independent_of_parent_position() {
        let parent = SimRng::new(7);
        let mut s1 = parent.substream(3);
        let mut parent2 = SimRng::new(7);
        // Draw from the parent before splitting: substream must not change.
        let _ = parent2.next_u64();
        let mut s2 = parent2.substream(3);
        for _ in 0..32 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn named_substreams_differ_by_name() {
        let parent = SimRng::new(7);
        let mut a = parent.substream_named("network");
        let mut b = parent.substream_named("cpu");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(r.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn unit_mean_is_about_half() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn index_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(17);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.index(5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(23);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
