//! Random distributions, statistics, and RNG plumbing for simulation
//! studies.
//!
//! The DSN 2002 study this workspace reproduces needs:
//!
//! * the distribution families UltraSAN offers for timed activities
//!   (deterministic, exponential, uniform, Weibull, Erlang) plus the
//!   *bimodal uniform mixture* the paper fits to measured message delays
//!   ([`Dist`]),
//! * online statistics with Student-t confidence intervals — the paper
//!   reports means with 90 % confidence intervals ([`stats::OnlineStats`]),
//! * empirical CDFs for the latency-distribution figures
//!   ([`stats::Ecdf`]),
//! * the bimodal-fit procedure of the paper's §5.1 ([`fit`]),
//! * phase-type (hyper-Erlang) moment matching, which the analytic
//!   solver uses to Markovianize deterministic and bi-modal stages
//!   ([`PhaseType`]),
//! * reproducible, splittable RNG streams ([`SimRng`]).
//!
//! All durations handled by this crate are `f64` **milliseconds** — the
//! unit the paper uses throughout; conversion to integer simulation time
//! happens at the simulator boundary.

pub mod dist;
pub mod fit;
pub mod phase;
pub mod rng;
pub mod stats;

pub use dist::Dist;
pub use phase::{PhBranch, PhaseType};
pub use rng::SimRng;
pub use stats::{BatchMeans, Ecdf, Histogram, OnlineStats};
