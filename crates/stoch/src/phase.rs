//! Phase-type (hyper-Erlang) approximation of delay distributions.
//!
//! The analytic solver in `ctsim-solve` requires every timed activity to
//! be exponential — the paper's actual parameterisation (deterministic
//! CPU stages, bi-modal uniform network delays) is not. The standard
//! Markovianization trick is to replace each non-exponential delay by a
//! *phase-type* distribution: an absorbing chain of exponential stages
//! whose absorption time matches the target's first moments. The CTMC
//! machinery then applies unchanged, at the price of a larger state
//! space (one phase counter per active expanded activity).
//!
//! This module keeps the representation deliberately structured — a
//! **hyper-Erlang** mixture, i.e. a probabilistic choice among Erlang
//! branches — rather than a general (α, T) matrix pair. Hyper-Erlang
//! distributions are dense in the non-negative distributions, every
//! moment is in closed form, and the branch/stage structure maps
//! directly onto the per-activity phase counters the reachability
//! exploration maintains.
//!
//! [`PhaseType::fit`] is the moment-matching entry point:
//!
//! * `Exp` and `Erlang` targets pass through **exactly** (they already
//!   are phase-type);
//! * targets with squared coefficient of variation `cv² > 1` get the
//!   balanced-means two-phase hyperexponential (exact first two
//!   moments);
//! * targets with `1/order ≤ cv² ≤ 1` get the classic mixed
//!   Erlang(k−1)/Erlang(k) fit (Tijms), again exact in the first two
//!   moments, with `k = ⌈1/cv²⌉`;
//! * lower-variance targets (deterministic stages in particular, where
//!   `cv² = 0`) cannot be matched by any finite chain: they get an
//!   `Erlang(order)`, the minimum-variance phase-type of that order, so
//!   the approximation error shrinks as `1/order`.

use crate::dist::Dist;

/// One Erlang branch of a hyper-Erlang distribution: with probability
/// `prob`, the delay is the sum of `stages` iid exponential stages of
/// rate `rate` (1/ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhBranch {
    /// Probability of taking this branch (branch probs sum to 1).
    pub prob: f64,
    /// Number of exponential stages (≥ 1).
    pub stages: u32,
    /// Rate of every stage in this branch (1/ms).
    pub rate: f64,
}

impl PhBranch {
    /// Mean of this branch's Erlang: `stages / rate`.
    pub fn mean(&self) -> f64 {
        self.stages as f64 / self.rate
    }

    /// Second moment of this branch's Erlang: `k(k+1)/rate²`.
    pub fn second_moment(&self) -> f64 {
        let k = self.stages as f64;
        k * (k + 1.0) / (self.rate * self.rate)
    }
}

/// A hyper-Erlang phase-type distribution: a probabilistic mixture of
/// Erlang branches. See the module docs for why this representation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseType {
    branches: Vec<PhBranch>,
}

impl PhaseType {
    /// A single exponential phase with the given mean (ms).
    ///
    /// # Panics
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(mean: f64) -> Self {
        Self::erlang(1, mean)
    }

    /// An Erlang of `k` stages with *total* mean `mean` (ms) — the same
    /// convention as [`Dist::Erlang`].
    ///
    /// # Panics
    /// Panics if `k == 0` or `mean` is not positive and finite.
    pub fn erlang(k: u32, mean: f64) -> Self {
        assert!(k >= 1, "an Erlang needs at least one stage");
        assert!(
            mean.is_finite() && mean > 0.0,
            "phase-type mean must be positive and finite, got {mean}"
        );
        Self {
            branches: vec![PhBranch {
                prob: 1.0,
                stages: k,
                rate: k as f64 / mean,
            }],
        }
    }

    /// A hyperexponential: branch `i` is a single exponential stage of
    /// mean `means[i]` taken with probability `probs[i]`.
    ///
    /// # Panics
    /// Panics if the slices disagree in length, are empty, the probs do
    /// not sum to 1, or any mean is not positive and finite.
    pub fn hyperexponential(probs: &[f64], means: &[f64]) -> Self {
        assert_eq!(probs.len(), means.len(), "probs/means length mismatch");
        assert!(!probs.is_empty(), "hyperexponential needs a branch");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "branch probabilities must sum to 1, got {total}"
        );
        let branches = probs
            .iter()
            .zip(means)
            .map(|(&p, &m)| {
                assert!(p >= 0.0, "negative branch probability");
                assert!(m.is_finite() && m > 0.0, "branch mean must be positive");
                PhBranch {
                    prob: p,
                    stages: 1,
                    rate: 1.0 / m,
                }
            })
            .collect();
        Self { branches }
    }

    /// Fits a phase-type approximation of `dist` with at most `order`
    /// stages per branch, matching the first two moments exactly
    /// whenever the order allows (see the module docs for the rules).
    ///
    /// `Exp` and `Erlang` targets are returned exactly (passthrough),
    /// even when the Erlang's stage count exceeds `order` — an exact
    /// representation always beats an approximation of the same family.
    ///
    /// # Panics
    /// Panics if `order == 0` or `dist` has a non-positive or
    /// non-finite mean (such a delay has no phase-type representation;
    /// model it as an instantaneous activity instead).
    pub fn fit(dist: &Dist, order: u32) -> Self {
        assert!(order >= 1, "phase-type order must be at least 1");
        match *dist {
            Dist::Exp { mean } => Self::exponential(mean),
            Dist::Erlang { k, mean } => Self::erlang(k.max(1), mean),
            // A hyper-Erlang already *is* a phase type: pass it through
            // exactly (like Exp/Erlang, even above the order budget).
            // This closes the loop with `to_dist`: a model whose delays
            // were substituted by their fits expands to exactly the
            // chain the simulator samples.
            Dist::HyperErlang { ref branches } => Self {
                branches: branches.clone(),
            },
            ref other => {
                let m1 = other.mean();
                assert!(
                    m1.is_finite() && m1 > 0.0,
                    "cannot fit a phase-type to a distribution with mean {m1}"
                );
                let cv2 = other.variance() / (m1 * m1);
                Self::fit_moments(m1, cv2, order)
            }
        }
    }

    /// Two-moment fit from `(mean, cv²)` directly.
    fn fit_moments(m1: f64, cv2: f64, order: u32) -> Self {
        if (cv2 - 1.0).abs() < 1e-12 {
            return Self::exponential(m1);
        }
        if cv2 > 1.0 {
            // Balanced-means two-phase hyperexponential: matches the
            // first two moments for any cv² > 1 with just two phases.
            let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
            return Self::hyperexponential(
                &[p, 1.0 - p],
                &[m1 / (2.0 * p), m1 / (2.0 * (1.0 - p))],
            );
        }
        // cv² < 1: mixed Erlang(k−1)/Erlang(k) with a common rate
        // (Tijms 1994). Exact when 1/k ≤ cv² (i.e. k = ⌈1/cv²⌉ fits in
        // the order budget); otherwise the best-in-order Erlang(order).
        let needed = (1.0 / cv2).ceil();
        if !needed.is_finite() || needed > order as f64 {
            return Self::erlang(order, m1);
        }
        let k = (needed as u32).max(2);
        let kf = k as f64;
        let p = (kf * cv2 - (kf * (1.0 + cv2) - kf * kf * cv2).sqrt()) / (1.0 + cv2);
        let rate = (kf - p) / m1;
        if p <= 1e-12 {
            return Self::erlang(k, m1);
        }
        Self {
            branches: vec![
                PhBranch {
                    prob: p,
                    stages: k - 1,
                    rate,
                },
                PhBranch {
                    prob: 1.0 - p,
                    stages: k,
                    rate,
                },
            ],
        }
    }

    /// The branches of the mixture, in a stable order.
    pub fn branches(&self) -> &[PhBranch] {
        &self.branches
    }

    /// Total number of phases `Σ_b stages_b` — the size of the phase
    /// counter an expanded activity contributes to the state vector.
    pub fn num_phases(&self) -> u32 {
        self.branches.iter().map(|b| b.stages).sum()
    }

    /// The exact mean (ms).
    pub fn mean(&self) -> f64 {
        self.branches.iter().map(|b| b.prob * b.mean()).sum()
    }

    /// The exact second moment `E[X²]` (ms²).
    pub fn second_moment(&self) -> f64 {
        self.branches
            .iter()
            .map(|b| b.prob * b.second_moment())
            .sum()
    }

    /// The exact variance (ms²).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }

    /// The squared coefficient of variation.
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// The CDF `P(X ≤ x)`: a mixture of Erlang CDFs.
    pub fn cdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x <= 0.0 {
            return 0.0;
        }
        self.branches
            .iter()
            .map(|b| {
                b.prob
                    * Dist::Erlang {
                        k: b.stages,
                        mean: b.mean(),
                    }
                    .cdf(x)
            })
            .sum()
    }

    /// The equivalent [`Dist`], when one exists: `Exp` for a single
    /// one-stage branch, `Erlang` for a single multi-stage branch,
    /// `None` for genuine mixtures (which the classic `Dist` families
    /// cannot express).
    pub fn as_dist(&self) -> Option<Dist> {
        match self.branches.as_slice() {
            [b] if b.stages == 1 => Some(Dist::Exp { mean: b.mean() }),
            [b] => Some(Dist::Erlang {
                k: b.stages,
                mean: b.mean(),
            }),
            _ => None,
        }
    }

    /// An exactly equivalent, always-available [`Dist`]: the canonical
    /// `Exp`/`Erlang` when the chain is a single branch, otherwise
    /// [`Dist::HyperErlang`]. Sampling it draws from precisely the
    /// distribution the analytic solver expands — the bridge that lets
    /// the simulator run the solver's phase-type model verbatim (the
    /// engine-vs-engine cross-validation in `experiments::analytic`).
    pub fn to_dist(&self) -> Dist {
        self.as_dist().unwrap_or_else(|| Dist::HyperErlang {
            branches: self.branches.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_two_moments(ph: &PhaseType, dist: &Dist) {
        assert!(
            (ph.mean() - dist.mean()).abs() < 1e-9,
            "mean {} vs {}",
            ph.mean(),
            dist.mean()
        );
        assert!(
            (ph.variance() - dist.variance()).abs() < 1e-9,
            "variance {} vs {}",
            ph.variance(),
            dist.variance()
        );
    }

    #[test]
    fn exponential_and_erlang_pass_through_exactly() {
        let e = Dist::Exp { mean: 2.5 };
        let ph = PhaseType::fit(&e, 1);
        assert_eq!(ph.as_dist(), Some(e.clone()));
        assert_two_moments(&ph, &e);
        // Erlang passthrough is exact even above the order budget.
        let k = Dist::Erlang { k: 7, mean: 3.0 };
        let ph = PhaseType::fit(&k, 2);
        assert_eq!(ph.num_phases(), 7);
        assert_eq!(ph.as_dist(), Some(k.clone()));
        assert_two_moments(&ph, &k);
    }

    #[test]
    fn order_one_fit_is_mean_matched_exponential() {
        for d in [
            Dist::Det(0.115),
            Dist::Uniform { lo: 0.05, hi: 0.3 },
            Dist::bimodal(0.8, (0.05, 0.08), (0.095, 0.3)),
        ] {
            let ph = PhaseType::fit(&d, 1);
            assert_eq!(ph.as_dist(), Some(Dist::Exp { mean: d.mean() }));
        }
    }

    #[test]
    fn low_variance_targets_get_mixed_erlang_with_exact_moments() {
        // Uniform cv² = 1/3·((hi−lo)/(hi+lo))²·4 ≤ 1/3 → k ≥ 3.
        let u = Dist::Uniform { lo: 1.0, hi: 3.0 };
        let k = (1.0 / u.scv()).ceil() as u32;
        let ph = PhaseType::fit(&u, k);
        assert_two_moments(&ph, &u);
        assert!(ph.num_phases() <= 2 * k);
        // The paper's bimodal network delay, cv² ≈ 0.43 → k = 3.
        let b = Dist::bimodal(0.8, (0.05, 0.08), (0.095, 0.3));
        let ph = PhaseType::fit(&b, 4);
        assert_two_moments(&ph, &b);
    }

    #[test]
    fn high_variance_targets_get_hyperexponential_with_exact_moments() {
        // Weibull with shape < 1 has cv² > 1.
        let w = Dist::Weibull {
            shape: 0.6,
            scale: 1.0,
        };
        assert!(w.scv() > 1.0);
        let ph = PhaseType::fit(&w, 4);
        assert_eq!(ph.num_phases(), 2, "H2 needs two phases");
        assert_two_moments(&ph, &w);
    }

    #[test]
    fn deterministic_target_gets_erlang_of_the_full_order() {
        let d = Dist::Det(0.025);
        for order in [1u32, 2, 4, 16] {
            let ph = PhaseType::fit(&d, order);
            assert_eq!(ph.num_phases(), order);
            assert!((ph.mean() - 0.025).abs() < 1e-12, "mean is always exact");
            let expect_var = 0.025 * 0.025 / order as f64;
            assert!((ph.variance() - expect_var).abs() < 1e-12);
        }
        // Variance decreases monotonically with the order.
        let v4 = PhaseType::fit(&d, 4).variance();
        let v16 = PhaseType::fit(&d, 16).variance();
        assert!(v16 < v4);
    }

    #[test]
    fn insufficient_order_falls_back_to_best_in_order_erlang() {
        // cv² = 1/12 / 1 ≈ 0.083 → needs k = 12; order 4 can't match.
        let u = Dist::Uniform { lo: 0.5, hi: 1.5 };
        let ph = PhaseType::fit(&u, 4);
        assert_eq!(ph.num_phases(), 4);
        assert!((ph.mean() - 1.0).abs() < 1e-12, "mean still exact");
        assert!(
            ph.variance() > u.variance(),
            "variance floor is mean²/order"
        );
    }

    #[test]
    fn cdf_is_a_proper_distribution_function() {
        let ph = PhaseType::fit(&Dist::bimodal(0.8, (0.05, 0.08), (0.095, 0.3)), 4);
        assert_eq!(ph.cdf(0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..200 {
            let c = ph.cdf(i as f64 * 0.01);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert!(ph.cdf(100.0) > 0.999999);
    }

    #[test]
    fn shifted_jitter_fits_through_the_total_moments() {
        let s = Dist::shifted(1.0, Dist::Exp { mean: 0.5 });
        // cv² = 0.25/2.25 = 1/9 → k = 9 matches exactly.
        let ph = PhaseType::fit(&s, 9);
        assert_two_moments(&ph, &s);
    }

    #[test]
    fn to_dist_round_trips_through_fit() {
        // Single branch → canonical Exp/Erlang.
        assert_eq!(
            PhaseType::erlang(3, 2.0).to_dist(),
            Dist::Erlang { k: 3, mean: 2.0 }
        );
        // Genuine mixture → HyperErlang, and fitting it back at any
        // order is the exact passthrough.
        let bimodal = Dist::bimodal(0.8, (0.05, 0.08), (0.095, 0.3));
        let ph = PhaseType::fit(&bimodal, 4);
        let d = ph.to_dist();
        assert!(matches!(d, Dist::HyperErlang { .. }));
        for order in [1u32, 2, 8] {
            assert_eq!(PhaseType::fit(&d, order), ph, "passthrough at {order}");
        }
        // The sampling form carries the fit's exact moments.
        assert!((d.mean() - ph.mean()).abs() < 1e-12);
        assert!((d.variance() - ph.variance()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_panics() {
        let _ = PhaseType::fit(&Dist::Det(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "mean")]
    fn zero_mean_panics() {
        let _ = PhaseType::fit(&Dist::Det(0.0), 4);
    }
}
