//! Process and protocol framework over the simulated cluster, after the
//! paper's Neko framework (Urbán, Défago, Schiper: "Neko: a single
//! environment to simulate and prototype distributed algorithms").
//!
//! A distributed algorithm is written once as a [`Node`] implementation
//! — a reactive state machine with message, heartbeat and timer handlers
//! — and executed by the [`Runtime`] on top of `ctsim-netsim`'s cluster
//! model. Handlers interact with the world only through [`Ctx`]:
//!
//! * [`Ctx::send`] / [`Ctx::broadcast_others`] — application messages
//!   (broadcast is n−1 *sequential unicasts*, as in the paper's
//!   implementation; the SAN model's single-broadcast-message shortcut
//!   is a deliberate difference the paper discusses),
//! * [`Ctx::send_heartbeat`] — failure-detector heartbeats (subject to
//!   the cluster's TCP batching),
//! * [`Ctx::set_timer`] / [`Ctx::cancel_timer`] — coarse (OS tick) or
//!   precise (native clock) timers,
//! * [`Ctx::charge_work`] — bills the CPU for the work this handler
//!   performs, the dominant per-message cost of the Java implementation,
//! * [`Ctx::now_local`] — the host's NTP-disciplined clock (true time
//!   plus a per-host offset within ±50 µs, as measured in the paper).

use ctsim_des::{SimDuration, SimTime};
use ctsim_netsim::{ClusterNet, Delivery, HostId, HostParams, MsgClass, NetParams, TimerId};
use ctsim_stoch::{Dist, SimRng};

pub use ctsim_netsim::TimerKind;

/// Identifies a process; process `i` runs on host `i`. The paper's
/// processes `p1 … pn` are `ProcessId(0) … ProcessId(n-1)` here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

/// What travels on the wire: either a failure-detector heartbeat or an
/// application message of type `M`.
#[derive(Debug, Clone)]
pub enum Wire<M> {
    /// A heartbeat (no payload).
    Heartbeat,
    /// An application message.
    App(M),
}

/// Per-node configuration of the framework layer.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// CPU time a handler bills per unit of protocol work
    /// ([`Ctx::charge_work`]).
    pub handler_cost: Dist,
    /// Magnitude bound of the NTP clock offset: each host's clock is
    /// offset from true time by `U[-x, +x]` ms (the paper: ±50 µs).
    pub clock_offset_bound: f64,
    /// Payload size of application messages in bytes (the paper: ~100).
    pub app_msg_bytes: u32,
    /// Payload size of heartbeats in bytes.
    pub heartbeat_bytes: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            handler_cost: Dist::Uniform {
                lo: 0.100,
                hi: 0.135,
            },
            clock_offset_bound: 0.05,
            app_msg_bytes: 100,
            heartbeat_bytes: 30,
        }
    }
}

/// A process's protocol stack: the reactive interface the [`Runtime`]
/// drives.
///
/// All handlers are non-blocking; waiting is expressed by storing state
/// and reacting to later events (message-driven style).
pub trait Node<M> {
    /// Called once at simulation start (true time 0), before any event.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);
    /// An application message from `from` arrived.
    ///
    /// Implementations that host a failure detector must treat this as
    /// a liveness proof for `from` (the paper's FD resets its timeout on
    /// *any* message).
    fn on_app_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId, msg: M);
    /// A heartbeat from `from` arrived.
    fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId);
    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64);
}

/// Handler-side view of the world (see the [crate docs](self)).
pub struct Ctx<'a, M> {
    net: &'a mut ClusterNet<Wire<M>>,
    cfg: &'a NodeConfig,
    me: ProcessId,
    n: usize,
    clock_offset_ns: i64,
    rng: &'a mut SimRng,
}

impl<'a, M: Clone> Ctx<'a, M> {
    /// This process's identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The local (NTP-disciplined) clock: true time plus this host's
    /// offset.
    pub fn now_local(&self) -> SimTime {
        let t = self.net.now().as_nanos() as i64 + self.clock_offset_ns;
        SimTime::from_nanos(t.max(0) as u64)
    }

    /// True simulation time — **not observable by a real process**; only
    /// for instrumentation.
    pub fn now_true(&self) -> SimTime {
        self.net.now()
    }

    /// Sends an application message (sending to self is local loopback).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.net.send(
            HostId(self.me.0),
            HostId(to.0),
            MsgClass::App,
            self.cfg.app_msg_bytes,
            Wire::App(msg),
        );
    }

    /// Sends `msg` to every *other* process as sequential unicasts in
    /// process-index order — exactly what the paper's implementation
    /// does for broadcasts.
    pub fn broadcast_others(&mut self, msg: M) {
        for i in 0..self.n {
            if i != self.me.0 {
                self.send(ProcessId(i), msg.clone());
            }
        }
    }

    /// Sends a heartbeat to one process.
    pub fn send_heartbeat(&mut self, to: ProcessId) {
        self.net.send(
            HostId(self.me.0),
            HostId(to.0),
            MsgClass::Heartbeat,
            self.cfg.heartbeat_bytes,
            Wire::Heartbeat,
        );
    }

    /// Bills one unit of protocol work (sampled from the configured
    /// handler-cost distribution) on this host's CPU. Call it when a
    /// message actually advances the protocol; stale or duplicate
    /// messages should not pay it.
    pub fn charge_work(&mut self) {
        let c = self.cfg.handler_cost.sample(self.rng);
        self.net.charge(HostId(self.me.0), c);
    }

    /// Bills an explicit amount of CPU time (ms).
    pub fn charge_ms(&mut self, ms: f64) {
        self.net.charge(HostId(self.me.0), ms);
    }

    /// Arms a timer that will call [`Node::on_timer`] with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, kind: TimerKind, token: u64) -> TimerId {
        self.net.set_timer(HostId(self.me.0), delay, kind, token)
    }

    /// Cancels a timer (harmless if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.net.cancel_timer(id);
    }

    /// This process's RNG substream (for randomized protocols).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// Drives a set of [`Node`]s over the simulated cluster.
pub struct Runtime<M, N> {
    net: ClusterNet<Wire<M>>,
    nodes: Vec<N>,
    node_rngs: Vec<SimRng>,
    offsets_ns: Vec<i64>,
    cfg: NodeConfig,
    started: bool,
}

impl<M, N> std::fmt::Debug for Runtime<M, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("n", &self.nodes.len())
            .field("now", &self.net.now())
            .finish()
    }
}

impl<M: Clone, N: Node<M>> Runtime<M, N> {
    /// Builds a runtime of `n` processes; `make(i)` constructs each
    /// node's protocol stack.
    pub fn new(
        n: usize,
        net_params: NetParams,
        host_params: HostParams,
        cfg: NodeConfig,
        rng: SimRng,
        mut make: impl FnMut(ProcessId) -> N,
    ) -> Self {
        let net = ClusterNet::new(n, net_params, host_params, rng.substream_named("net"));
        let mut offs_rng = rng.substream_named("clock");
        let offsets_ns = (0..n)
            .map(|_| {
                let b = cfg.clock_offset_bound;
                let off_ms = offs_rng.uniform(-b, b + f64::MIN_POSITIVE);
                (off_ms * 1e6) as i64
            })
            .collect();
        let node_rngs = (0..n)
            .map(|i| rng.substream_named("node").substream(i as u64))
            .collect();
        let nodes = (0..n).map(|i| make(ProcessId(i))).collect();
        Self {
            net,
            nodes,
            node_rngs,
            offsets_ns,
            cfg,
            started: false,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current true time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.0]
    }

    /// Mutable access to a node's protocol state (for harness setup).
    pub fn node_mut(&mut self, p: ProcessId) -> &mut N {
        &mut self.nodes[p.0]
    }

    /// All nodes, in process order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Crashes a process (and its host) immediately.
    pub fn crash(&mut self, p: ProcessId) {
        self.net.crash_host(HostId(p.0));
    }

    /// Whether a process is crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.net.is_crashed(HostId(p.0))
    }

    /// Messages submitted so far (diagnostics).
    pub fn messages_sent(&self) -> u64 {
        self.net.messages_sent()
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                if !self.net.is_crashed(HostId(i)) {
                    let mut ctx = Ctx {
                        net: &mut self.net,
                        cfg: &self.cfg,
                        me: ProcessId(i),
                        n: self.nodes.len(),
                        clock_offset_ns: self.offsets_ns[i],
                        rng: &mut self.node_rngs[i],
                    };
                    self.nodes[i].on_start(&mut ctx);
                }
            }
        }
    }

    /// Processes one observable occurrence (message delivery or timer).
    /// Returns `false` when nothing further happens before `horizon`.
    pub fn step(&mut self, horizon: SimTime) -> bool {
        self.ensure_started();
        let Some(delivery) = self.net.advance(horizon) else {
            return false;
        };
        match delivery {
            Delivery::Message {
                from,
                to,
                class,
                payload,
                ..
            } => {
                let i = to.0;
                self.net.begin_handler(HostId(i));
                let mut ctx = Ctx {
                    net: &mut self.net,
                    cfg: &self.cfg,
                    me: ProcessId(i),
                    n: self.nodes.len(),
                    clock_offset_ns: self.offsets_ns[i],
                    rng: &mut self.node_rngs[i],
                };
                match (class, payload) {
                    (MsgClass::Heartbeat, _) | (_, Wire::Heartbeat) => {
                        self.nodes[i].on_heartbeat(&mut ctx, ProcessId(from.0));
                    }
                    (_, Wire::App(m)) => {
                        self.nodes[i].on_app_message(&mut ctx, ProcessId(from.0), m);
                    }
                }
                self.net.end_handler();
            }
            Delivery::Timer { host, token, .. } => {
                let i = host.0;
                self.net.begin_handler(HostId(i));
                let mut ctx = Ctx {
                    net: &mut self.net,
                    cfg: &self.cfg,
                    me: ProcessId(i),
                    n: self.nodes.len(),
                    clock_offset_ns: self.offsets_ns[i],
                    rng: &mut self.node_rngs[i],
                };
                self.nodes[i].on_timer(&mut ctx, token);
                self.net.end_handler();
            }
        }
        true
    }

    /// Runs until quiescence or `horizon`, whichever comes first.
    pub fn run_until(&mut self, horizon: SimTime) {
        while self.step(horizon) {}
    }

    /// Runs while `keep_going` holds over the nodes (checked after each
    /// occurrence) or until `horizon`. Returns `true` when the predicate
    /// turned false (i.e. the awaited condition was reached).
    pub fn run_while(&mut self, horizon: SimTime, keep_going: impl Fn(&[N]) -> bool) -> bool {
        self.ensure_started();
        if !keep_going(&self.nodes) {
            return true;
        }
        while self.step(horizon) {
            if !keep_going(&self.nodes) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsim_netsim::{HostParams, NetParams};

    fn quiet_host() -> HostParams {
        HostParams {
            send_cost: Dist::Det(0.06),
            recv_cost: Dist::Det(0.03),
            recv_tail_prob: 0.0,
            recv_tail: Dist::Det(0.0),
            gc_enabled: false,
            ..HostParams::default()
        }
    }

    fn cfg() -> NodeConfig {
        NodeConfig {
            handler_cost: Dist::Det(0.1),
            ..NodeConfig::default()
        }
    }

    /// Ping-pong: node 0 sends a counter; each receiver increments and
    /// returns it until it reaches 6.
    #[derive(Default)]
    struct PingPong {
        got: Vec<u32>,
        heartbeats: u32,
    }

    impl Node<u32> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me().0 == 0 {
                ctx.send(ProcessId(1), 0);
            }
        }
        fn on_app_message(&mut self, ctx: &mut Ctx<'_, u32>, from: ProcessId, msg: u32) {
            self.got.push(msg);
            ctx.charge_work();
            if msg < 6 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_heartbeat(&mut self, _ctx: &mut Ctx<'_, u32>, _from: ProcessId) {
            self.heartbeats += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
    }

    fn pingpong_runtime(seed: u64) -> Runtime<u32, PingPong> {
        Runtime::new(
            2,
            NetParams::default(),
            quiet_host(),
            cfg(),
            SimRng::new(seed),
            |_| PingPong::default(),
        )
    }

    #[test]
    fn ping_pong_exchanges_messages() {
        let mut rt = pingpong_runtime(1);
        rt.run_until(SimTime::from_secs(1.0));
        assert_eq!(rt.node(ProcessId(1)).got, vec![0, 2, 4, 6]);
        assert_eq!(rt.node(ProcessId(0)).got, vec![1, 3, 5]);
    }

    #[test]
    fn runs_are_reproducible() {
        let mut a = pingpong_runtime(3);
        let mut b = pingpong_runtime(3);
        a.run_until(SimTime::from_secs(1.0));
        b.run_until(SimTime::from_secs(1.0));
        assert_eq!(a.now(), b.now());
        assert_eq!(a.node(ProcessId(0)).got, b.node(ProcessId(0)).got);
    }

    /// Broadcast order: others receive in index order (sequential
    /// unicasts on one sender CPU).
    struct Bcast {
        deliveries: Vec<(ProcessId, SimTime)>,
    }

    impl Node<u8> for Bcast {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            if ctx.me().0 == 0 {
                ctx.broadcast_others(9);
            }
        }
        fn on_app_message(&mut self, ctx: &mut Ctx<'_, u8>, _from: ProcessId, _m: u8) {
            self.deliveries.push((ctx.me(), ctx.now_true()));
        }
        fn on_heartbeat(&mut self, _ctx: &mut Ctx<'_, u8>, _from: ProcessId) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u8>, _token: u64) {}
    }

    #[test]
    fn broadcast_is_sequential_unicasts_in_index_order() {
        let mut rt = Runtime::new(
            4,
            NetParams::default(),
            quiet_host(),
            cfg(),
            SimRng::new(5),
            |_| Bcast { deliveries: vec![] },
        );
        rt.run_until(SimTime::from_secs(1.0));
        let mut times = Vec::new();
        for i in 1..4 {
            let d = &rt.node(ProcessId(i)).deliveries;
            assert_eq!(d.len(), 1);
            times.push(d[0].1);
        }
        assert!(
            times[0] < times[1] && times[1] < times[2],
            "deliveries must be staggered by send serialization: {times:?}"
        );
    }

    /// Timers fire and can be cancelled.
    #[derive(Default)]
    struct TimerNode {
        fired: Vec<u64>,
    }

    impl Node<u8> for TimerNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            ctx.set_timer(SimDuration::from_ms(2.0), TimerKind::Precise, 1);
            let doomed = ctx.set_timer(SimDuration::from_ms(3.0), TimerKind::Precise, 2);
            ctx.cancel_timer(doomed);
            ctx.set_timer(SimDuration::from_ms(4.0), TimerKind::Precise, 3);
        }
        fn on_app_message(&mut self, _: &mut Ctx<'_, u8>, _: ProcessId, _: u8) {}
        fn on_heartbeat(&mut self, _: &mut Ctx<'_, u8>, _: ProcessId) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u8>, token: u64) {
            self.fired.push(token);
        }
    }

    #[test]
    fn timers_fire_in_order_and_respect_cancellation() {
        let mut rt = Runtime::new(
            1,
            NetParams::default(),
            quiet_host(),
            cfg(),
            SimRng::new(2),
            |_| TimerNode::default(),
        );
        rt.run_until(SimTime::from_secs(1.0));
        assert_eq!(rt.node(ProcessId(0)).fired, vec![1, 3]);
    }

    #[test]
    fn crashed_node_is_silent() {
        let mut rt = pingpong_runtime(7);
        rt.crash(ProcessId(1));
        rt.run_until(SimTime::from_secs(1.0));
        assert!(rt.node(ProcessId(1)).got.is_empty());
        assert!(rt.node(ProcessId(0)).got.is_empty());
        assert!(rt.is_crashed(ProcessId(1)));
        assert!(!rt.is_crashed(ProcessId(0)));
    }

    #[test]
    fn local_clocks_are_offset_within_bound() {
        struct ClockNode {
            skew_ms: f64,
        }
        impl Node<u8> for ClockNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                ctx.set_timer(SimDuration::from_ms(1.0), TimerKind::Precise, 0);
            }
            fn on_app_message(&mut self, _: &mut Ctx<'_, u8>, _: ProcessId, _: u8) {}
            fn on_heartbeat(&mut self, _: &mut Ctx<'_, u8>, _: ProcessId) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u8>, _: u64) {
                self.skew_ms = ctx.now_local().as_ms() - ctx.now_true().as_ms();
            }
        }
        let mut rt = Runtime::new(
            8,
            NetParams::default(),
            quiet_host(),
            cfg(),
            SimRng::new(11),
            |_| ClockNode { skew_ms: 99.0 },
        );
        rt.run_until(SimTime::from_ms(10.0));
        let mut distinct = std::collections::HashSet::new();
        for i in 0..8 {
            let s = rt.node(ProcessId(i)).skew_ms;
            assert!((-0.051..=0.051).contains(&s), "skew {s} out of NTP bound");
            distinct.insert((s * 1e7) as i64);
        }
        assert!(distinct.len() > 1, "hosts should have distinct offsets");
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut rt = pingpong_runtime(13);
        let reached = rt.run_while(SimTime::from_secs(1.0), |nodes| nodes[1].got.len() < 2);
        assert!(reached);
        assert_eq!(rt.node(ProcessId(1)).got.len(), 2);
    }

    #[test]
    fn heartbeats_reach_the_heartbeat_handler() {
        struct HbNode {
            hb_from: Vec<usize>,
        }
        impl Node<u8> for HbNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                if ctx.me().0 == 0 {
                    ctx.send_heartbeat(ProcessId(1));
                }
            }
            fn on_app_message(&mut self, _: &mut Ctx<'_, u8>, _: ProcessId, _: u8) {}
            fn on_heartbeat(&mut self, _: &mut Ctx<'_, u8>, from: ProcessId) {
                self.hb_from.push(from.0);
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, u8>, _: u64) {}
        }
        let mut rt = Runtime::new(
            2,
            NetParams::default(),
            quiet_host(),
            cfg(),
            SimRng::new(17),
            |_| HbNode { hb_from: vec![] },
        );
        rt.run_until(SimTime::from_secs(1.0));
        assert_eq!(rt.node(ProcessId(1)).hb_from, vec![0]);
    }
}
