//! A minimal, self-contained re-implementation of the slice of the
//! Criterion API this workspace's benches use, for offline builds.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` crate cannot be fetched. The shim keeps the bench
//! sources unchanged and supports two modes:
//!
//! * **bench mode** (`cargo bench`, detected via the `--bench` argument
//!   cargo passes): each benchmark is warmed up and then timed for a
//!   fixed measurement window; mean ns/iter is printed.
//! * **smoke mode** (any other invocation, e.g. `cargo test` running
//!   the bench target): each benchmark body runs once, so the target is
//!   exercised end-to-end without taking minutes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, kept so bench targets can export their
/// numbers (e.g. to a JSON results file) beyond the console print.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean wall-clock per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations measured (1 in smoke mode).
    pub iters: u64,
    /// Peak live-heap bytes of one iteration, when the bench target
    /// measured it (self-timed rows with a counting allocator).
    pub peak_bytes: Option<u64>,
    /// Extra structured context as a raw JSON object literal (e.g.
    /// `{ "generator": "kron" }`); bench targets render it as a nested
    /// object alongside the flat measurement fields.
    pub meta: Option<String>,
}

/// Benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    full: bool,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            full: std::env::args().any(|a| a == "--bench"),
            measurement: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            full: self.full,
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(&name);
        if b.iters > 0 {
            self.results.push(BenchResult {
                name,
                ns_per_iter: b.elapsed.as_nanos() as f64 / b.iters as f64,
                iters: b.iters,
                peak_bytes: None,
                meta: None,
            });
        }
        self
    }

    /// Whether the driver runs full measurements (`cargo bench`) or
    /// single smoke iterations (any other invocation).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Every measurement taken so far, in registration order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim sizes its sample by
    /// wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark; mirrors `criterion::Bencher`.
pub struct Bencher {
    full: bool,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine repeatedly (bench mode) or once (smoke mode)
    /// and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.full {
            let start = Instant::now();
            black_box(routine());
            self.elapsed = start.elapsed();
            self.iters = 1;
            return;
        }
        // Warm-up + calibration: time a single iteration to pick a
        // batch size that fits the measurement window.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = self
            .measurement
            .as_nanos()
            .div_ceil(once.as_nanos())
            .clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} ... no measurement");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let mode = if self.full { "bench" } else { "smoke" };
        println!(
            "{mode} {name:<50} {:>14.0} ns/iter ({} iters)",
            per_iter, self.iters
        );
    }
}

/// Bundles benchmark functions; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for bench targets; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut c = Criterion {
            full: false,
            measurement: Duration::from_millis(1),
            results: Vec::new(),
        };
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_batches_iterations() {
        let mut c = Criterion {
            full: true,
            measurement: Duration::from_millis(5),
            results: Vec::new(),
        };
        let mut runs = 0u64;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert!(runs > 1, "expected batched iterations, got {runs}");
    }

    #[test]
    fn results_are_recorded_with_group_prefixes() {
        let mut c = Criterion {
            full: false,
            measurement: Duration::from_millis(1),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("a", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("solo", |b| b.iter(|| 2 + 2));
        let names: Vec<&str> = c.results().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["grp/a", "solo"]);
        assert!(c.results().iter().all(|r| r.iters == 1));
        assert!(!c.is_full());
    }

    #[test]
    fn groups_prefix_names_and_chain() {
        let mut c = Criterion {
            full: false,
            measurement: Duration::from_millis(1),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
