//! A minimal, self-contained re-implementation of the slice of the
//! `proptest` API this workspace uses, for offline builds.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` cannot be fetched. This shim keeps the property-test
//! sources unchanged: `proptest! { fn t(x in strategy) { .. } }` runs
//! the body over `cases` pseudo-random samples of each strategy. There
//! is **no shrinking** — a failing case panics with the sampled inputs
//! so it can be reproduced by hand.

use std::fmt;
use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a label (typically the test name), so each
    /// property test gets a stable but distinct sequence.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Error carried out of a failing property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed assertion with a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of pseudo-random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer strategy range");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let x = self.start + (self.end - self.start) * rng.unit();
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `len in lens` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, lens: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lens }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lens: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.lens.end - self.lens.start) as u64;
            assert!(span > 0, "empty vec strategy length range");
            let len = self.lens.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($t:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($t)* }
    };
    ($($t:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::ProptestConfig::default()) $($t)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cfg.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}: {}", a, b, format!($($fmt)*)
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -0.0f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.5).contains(&y), "y = {y}");
        }

        #[test]
        fn tuples_and_maps_compose(v in super::collection::vec(arb_even(), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in &v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn oneof_picks_each_arm(x in prop_oneof![0u64..1, 10u64..11]) {
            prop_assert!(x == 0 || x == 10, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            fn always_fails(x in 0u32..5) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
