//! The cluster simulator: per-host CPUs, one shared hub, TCP batching
//! effects, coarse timers, and stop-the-world pauses.
//!
//! [`ClusterNet`] is driven by repeatedly calling
//! [`ClusterNet::advance`], which processes internal pipeline events
//! (CPU job completions, hub transmissions, Nagle flushes, GC pauses)
//! silently and returns only *observable* occurrences: message
//! deliveries and timer firings. The caller (the `ctsim-neko` runtime)
//! dispatches those to protocol code, which reacts by calling
//! [`ClusterNet::send`], [`ClusterNet::charge`] and
//! [`ClusterNet::set_timer`].

use std::collections::{HashMap, VecDeque};

use ctsim_des::{EventQueue, SimDuration, SimTime};
use ctsim_stoch::SimRng;

use crate::params::{HostId, HostParams, MsgClass, NetParams};

/// How a timer's wake-up time is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// A thread `sleep()`: quantized up to the scheduler tick plus up to
    /// one extra tick (Linux 2.2 semantics). Failure detectors use this.
    Coarse,
    /// A native-clock wait with microsecond-scale jitter (the paper's
    /// custom 1 µs C clock). The measurement harness uses this.
    Precise,
}

/// Handle for cancelling a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// An observable occurrence returned by [`ClusterNet::advance`].
#[derive(Debug)]
pub enum Delivery<P> {
    /// A message finished its receive path and reaches the application.
    Message {
        /// True time of delivery.
        at: SimTime,
        /// Sending host.
        from: HostId,
        /// Receiving host.
        to: HostId,
        /// Traffic class.
        class: MsgClass,
        /// The payload handed to [`ClusterNet::send`].
        payload: P,
    },
    /// A timer fired.
    Timer {
        /// True time of the wake-up.
        at: SimTime,
        /// Host whose timer fired.
        host: HostId,
        /// Caller-chosen token identifying the timer's purpose.
        token: u64,
    },
}

#[derive(Debug)]
struct Msg<P> {
    from: HostId,
    to: HostId,
    class: MsgClass,
    bytes: u32,
    payload: P,
}

#[derive(Debug)]
enum JobKind<P> {
    Send(Msg<P>),
    Recv(Msg<P>),
    /// Handler work billed via [`ClusterNet::charge`].
    Work,
    /// A stop-the-world pause.
    Gc,
}

#[derive(Debug)]
struct Job<P> {
    kind: JobKind<P>,
    cost: SimDuration,
}

struct Host<P> {
    params: HostParams,
    rng: SimRng,
    queue: VecDeque<Job<P>>,
    current: Option<JobKind<P>>,
    busy: bool,
    crashed: bool,
    gc_until: SimTime,
}

#[derive(Debug, Default)]
struct NagleGate {
    blocked: bool,
    epoch: u64,
}

struct TimerRec {
    host: HostId,
    token: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    CpuDone(usize),
    HubDone,
    NagleFlush { from: usize, to: usize, epoch: u64 },
    GcStart(usize),
    Timer(u64),
}

/// The simulated cluster (see the [crate docs](crate)).
pub struct ClusterNet<P> {
    net: NetParams,
    hosts: Vec<Host<P>>,
    // Pending heartbeats held by Nagle, per ordered pair (from, to).
    nagle: Vec<Vec<NagleGate>>,
    nagle_pending: Vec<Vec<Vec<Msg<P>>>>,
    hub_queue: VecDeque<Msg<P>>,
    hub_busy: bool,
    hub_current: Option<Msg<P>>,
    queue: EventQueue<Ev>,
    timers: HashMap<u64, TimerRec>,
    next_timer: u64,
    rng: SimRng,
    /// While a handler runs, jobs for this host are inserted at the
    /// front of its CPU queue in submission order.
    handler: Option<(usize, usize)>,
    messages_sent: u64,
    messages_delivered: u64,
}

impl<P> std::fmt::Debug for ClusterNet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNet")
            .field("hosts", &self.hosts.len())
            .field("now", &self.queue.now())
            .field("sent", &self.messages_sent)
            .field("delivered", &self.messages_delivered)
            .finish()
    }
}

impl<P> ClusterNet<P> {
    /// Builds a cluster of `n` hosts with identical parameters.
    pub fn new(n: usize, net: NetParams, host_params: HostParams, rng: SimRng) -> Self {
        let mut queue = EventQueue::new();
        let mut hosts = Vec::with_capacity(n);
        for i in 0..n {
            let mut hrng = rng.substream(1000 + i as u64);
            if host_params.gc_enabled {
                let first = SimDuration::from_ms(host_params.gc_interval.sample(&mut hrng));
                queue.schedule_at(SimTime::ZERO + first, Ev::GcStart(i));
            }
            hosts.push(Host {
                params: host_params.clone(),
                rng: hrng,
                queue: VecDeque::new(),
                current: None,
                busy: false,
                crashed: false,
                gc_until: SimTime::ZERO,
            });
        }
        Self {
            net,
            hosts,
            nagle: (0..n)
                .map(|_| (0..n).map(|_| NagleGate::default()).collect())
                .collect(),
            nagle_pending: (0..n)
                .map(|_| (0..n).map(|_| Vec::new()).collect())
                .collect(),
            hub_queue: VecDeque::new(),
            hub_busy: false,
            hub_current: None,
            queue,
            timers: HashMap::new(),
            next_timer: 0,
            rng: rng.substream(1),
            handler: None,
            messages_sent: 0,
            messages_delivered: 0,
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Current (true) simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total messages submitted via [`ClusterNet::send`].
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages that completed delivery.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Crashes a host: everything queued is dropped, no further sends,
    /// deliveries or timers happen on it.
    pub fn crash_host(&mut self, h: HostId) {
        let host = &mut self.hosts[h.0];
        host.crashed = true;
        host.queue.clear();
    }

    /// Whether a host is crashed.
    pub fn is_crashed(&self, h: HostId) -> bool {
        self.hosts[h.0].crashed
    }

    /// Submits a message. `from == to` models local loopback delivery
    /// (no hub). Crashed senders send nothing.
    pub fn send(&mut self, from: HostId, to: HostId, class: MsgClass, bytes: u32, payload: P) {
        if self.hosts[from.0].crashed {
            return;
        }
        self.messages_sent += 1;
        let msg = Msg {
            from,
            to,
            class,
            bytes,
            payload,
        };
        if from == to {
            let cost = {
                let host = &mut self.hosts[to.0];
                SimDuration::from_ms(host.params.recv_cost.sample(&mut host.rng))
            };
            self.cpu_enqueue(
                to.0,
                Job {
                    kind: JobKind::Recv(msg),
                    cost,
                },
            );
        } else {
            let cost = {
                let host = &mut self.hosts[from.0];
                SimDuration::from_ms(host.params.send_cost.sample(&mut host.rng))
            };
            self.cpu_enqueue(
                from.0,
                Job {
                    kind: JobKind::Send(msg),
                    cost,
                },
            );
        }
    }

    /// Bills handler work on a host's CPU: the time the protocol layer
    /// spends reacting to the message just delivered. Runs before any
    /// previously queued job (the handler is executing *now*).
    pub fn charge(&mut self, h: HostId, cost_ms: f64) {
        if self.hosts[h.0].crashed || cost_ms <= 0.0 {
            return;
        }
        self.cpu_enqueue(
            h.0,
            Job {
                kind: JobKind::Work,
                cost: SimDuration::from_ms(cost_ms),
            },
        );
    }

    /// Marks the start of a protocol handler on `h`: until
    /// [`ClusterNet::end_handler`], jobs submitted for `h` (charges and
    /// sends) are placed ahead of previously queued jobs, in submission
    /// order — they are part of the currently executing handler.
    pub fn begin_handler(&mut self, h: HostId) {
        self.handler = Some((h.0, 0));
    }

    /// Ends the handler window opened by [`ClusterNet::begin_handler`].
    pub fn end_handler(&mut self) {
        self.handler = None;
    }

    /// Sets a timer on a host. The true wake-up time depends on the
    /// [`TimerKind`]. Returns a handle for cancellation.
    pub fn set_timer(
        &mut self,
        h: HostId,
        delay: SimDuration,
        kind: TimerKind,
        token: u64,
    ) -> TimerId {
        let host = &mut self.hosts[h.0];
        let actual = match kind {
            TimerKind::Coarse => {
                let g = host.params.timer_granularity;
                let d = delay.as_ms();
                let ticks = (d / g).ceil().max(1.0);
                let extra = host.params.timer_extra.sample(&mut host.rng);
                SimDuration::from_ms(ticks * g + extra)
            }
            TimerKind::Precise => {
                let j = host.params.precise_timer_jitter.sample(&mut host.rng);
                delay + SimDuration::from_ms(j)
            }
        };
        let id = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(id, TimerRec { host: h, token });
        self.queue
            .schedule_at(self.queue.now() + actual, Ev::Timer(id));
        TimerId(id)
    }

    /// Cancels a timer; harmless if it already fired.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.remove(&id.0);
    }

    /// Processes internal events until the next observable occurrence at
    /// or before `horizon`. Returns `None` when no further occurrence
    /// exists within the horizon (time stops at the last processed
    /// event).
    pub fn advance(&mut self, horizon: SimTime) -> Option<Delivery<P>> {
        loop {
            self.start_idle_resources();
            let t = self.queue.peek_time()?;
            if t > horizon {
                return None;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            match ev {
                Ev::CpuDone(h) => {
                    let kind = {
                        let host = &mut self.hosts[h];
                        host.busy = false;
                        host.current.take()
                    };
                    let Some(kind) = kind else { continue };
                    if self.hosts[h].crashed {
                        continue;
                    }
                    match kind {
                        JobKind::Send(msg) => self.on_send_path_done(msg),
                        JobKind::Recv(msg) => {
                            self.messages_delivered += 1;
                            return Some(Delivery::Message {
                                at: now,
                                from: msg.from,
                                to: msg.to,
                                class: msg.class,
                                payload: msg.payload,
                            });
                        }
                        JobKind::Work | JobKind::Gc => {}
                    }
                }
                Ev::HubDone => {
                    self.hub_busy = false;
                    let Some(msg) = self.hub_current.take() else {
                        continue;
                    };
                    let to = msg.to.0;
                    if self.hosts[to].crashed {
                        continue;
                    }
                    let cost = {
                        let host = &mut self.hosts[to];
                        let mut c = host.params.recv_cost.sample(&mut host.rng);
                        let p = host.params.recv_tail_prob;
                        if host.rng.chance(p) {
                            c += host.params.recv_tail.sample(&mut host.rng);
                        }
                        SimDuration::from_ms(c)
                    };
                    self.cpu_enqueue(
                        to,
                        Job {
                            kind: JobKind::Recv(msg),
                            cost,
                        },
                    );
                }
                Ev::NagleFlush { from, to, epoch } => {
                    if self.nagle[from][to].epoch != epoch {
                        continue; // superseded by an app-message flush
                    }
                    let pending = std::mem::take(&mut self.nagle_pending[from][to]);
                    if pending.is_empty() {
                        self.nagle[from][to].blocked = false;
                    } else {
                        for m in pending {
                            self.hub_queue.push_back(m);
                        }
                        // The released batch is again unacknowledged.
                        let e = self.bump_nagle_epoch(from, to);
                        self.schedule_nagle_flush(from, to, e);
                    }
                }
                Ev::GcStart(h) => {
                    let (dur, next) = {
                        let host = &mut self.hosts[h];
                        (
                            host.params.gc_duration.sample(&mut host.rng),
                            host.params.gc_interval.sample(&mut host.rng),
                        )
                    };
                    self.queue
                        .schedule_in(SimDuration::from_ms(dur.max(0.0) + next), Ev::GcStart(h));
                    if !self.hosts[h].crashed {
                        // The pause preempts: goes to the queue front.
                        self.hosts[h].queue.push_front(Job {
                            kind: JobKind::Gc,
                            cost: SimDuration::from_ms(dur),
                        });
                    }
                }
                Ev::Timer(id) => {
                    let Some(rec) = self.timers.get(&id) else {
                        continue;
                    };
                    let h = rec.host;
                    if self.hosts[h.0].crashed {
                        self.timers.remove(&id);
                        continue;
                    }
                    // A stop-the-world pause delays thread wake-ups.
                    if now < self.hosts[h.0].gc_until {
                        let until = self.hosts[h.0].gc_until;
                        self.queue.schedule_at(until, Ev::Timer(id));
                        continue;
                    }
                    let rec = self.timers.remove(&id).expect("present");
                    return Some(Delivery::Timer {
                        at: now,
                        host: rec.host,
                        token: rec.token,
                    });
                }
            }
        }
    }

    fn bump_nagle_epoch(&mut self, from: usize, to: usize) -> u64 {
        let gate = &mut self.nagle[from][to];
        gate.blocked = true;
        gate.epoch += 1;
        gate.epoch
    }

    fn schedule_nagle_flush(&mut self, from: usize, to: usize, epoch: u64) {
        let ack = self.net.delayed_ack.sample(&mut self.rng);
        self.queue.schedule_in(
            SimDuration::from_ms(ack),
            Ev::NagleFlush { from, to, epoch },
        );
    }

    /// A message finished its sender-side CPU work: route it to the hub,
    /// subject to Nagle batching for heartbeat traffic.
    fn on_send_path_done(&mut self, msg: Msg<P>) {
        let (from, to) = (msg.from.0, msg.to.0);
        match msg.class {
            MsgClass::Heartbeat if self.net.nagle_on_heartbeats => {
                if self.nagle[from][to].blocked {
                    self.nagle_pending[from][to].push(msg);
                } else {
                    self.hub_queue.push_back(msg);
                    let e = self.bump_nagle_epoch(from, to);
                    self.schedule_nagle_flush(from, to, e);
                }
            }
            _ => {
                // Application traffic flushes pending heartbeats on the
                // same connection (piggybacked acknowledgements) and is
                // never delayed itself.
                let pending = std::mem::take(&mut self.nagle_pending[from][to]);
                for m in pending {
                    self.hub_queue.push_back(m);
                }
                let gate = &mut self.nagle[from][to];
                gate.blocked = false;
                gate.epoch += 1; // invalidate any scheduled flush
                self.hub_queue.push_back(msg);
            }
        }
    }

    fn cpu_enqueue(&mut self, h: usize, job: Job<P>) {
        let insert_at = match &mut self.handler {
            Some((hh, cursor)) if *hh == h => {
                let pos = (*cursor).min(self.hosts[h].queue.len());
                *cursor += 1;
                Some(pos)
            }
            _ => None,
        };
        match insert_at {
            Some(pos) => self.hosts[h].queue.insert(pos, job),
            None => self.hosts[h].queue.push_back(job),
        }
    }

    fn start_idle_resources(&mut self) {
        let now = self.queue.now();
        for h in 0..self.hosts.len() {
            let host = &mut self.hosts[h];
            if !host.busy {
                if let Some(job) = host.queue.pop_front() {
                    host.busy = true;
                    if matches!(job.kind, JobKind::Gc) {
                        host.gc_until = now + job.cost;
                    }
                    host.current = Some(job.kind);
                    self.queue.schedule_in(job.cost, Ev::CpuDone(h));
                }
            }
        }
        if !self.hub_busy {
            if let Some(msg) = self.hub_queue.pop_front() {
                self.hub_busy = true;
                let ft = SimDuration::from_ms(self.net.frame_time_ms(msg.bytes));
                self.hub_current = Some(msg);
                self.queue.schedule_in(ft, Ev::HubDone);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsim_stoch::Dist;

    fn quiet_host() -> HostParams {
        HostParams {
            send_cost: Dist::Det(0.06),
            recv_cost: Dist::Det(0.03),
            recv_tail_prob: 0.0,
            recv_tail: Dist::Det(0.0),
            gc_enabled: false,
            ..HostParams::default()
        }
    }

    fn cluster(n: usize) -> ClusterNet<u32> {
        ClusterNet::new(n, NetParams::default(), quiet_host(), SimRng::new(9))
    }

    fn nagle_params() -> NetParams {
        NetParams {
            nagle_on_heartbeats: true,
            ..NetParams::default()
        }
    }

    fn drain(net: &mut ClusterNet<u32>, horizon: SimTime) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(d) = net.advance(horizon) {
            if let Delivery::Message { at, payload, .. } = d {
                out.push((at, payload));
            }
        }
        out
    }

    #[test]
    fn unicast_delivery_time_is_send_hub_recv() {
        let mut net = cluster(2);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 7);
        let got = drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(got.len(), 1);
        let e2e = got[0].0.as_ms();
        let expect = 0.06 + NetParams::default().frame_time_ms(100) + 0.03;
        assert!((e2e - expect).abs() < 1e-9, "e2e {e2e} expect {expect}");
        assert_eq!(got[0].1, 7);
    }

    #[test]
    fn per_pair_fifo_order_is_preserved() {
        let mut net = cluster(2);
        for k in 0..20 {
            net.send(HostId(0), HostId(1), MsgClass::App, 100, k);
        }
        let got = drain(&mut net, SimTime::from_secs(1.0));
        let payloads: Vec<u32> = got.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn sender_cpu_serializes_sends() {
        let mut net = cluster(3);
        // Two sends from host 0: the second waits for the first's CPU.
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 1);
        net.send(HostId(0), HostId(2), MsgClass::App, 100, 2);
        let got = drain(&mut net, SimTime::from_secs(1.0));
        let dt = (got[1].0 - got[0].0).as_ms();
        // Second message leaves the CPU 0.06 later; hub adds its slot.
        assert!(dt >= 0.059, "serialization gap {dt}");
    }

    #[test]
    fn hub_serializes_concurrent_senders() {
        let mut net = cluster(3);
        // Two hosts send simultaneously to host 2: frames serialize.
        net.send(HostId(0), HostId(2), MsgClass::App, 1000, 1);
        net.send(HostId(1), HostId(2), MsgClass::App, 1000, 2);
        let got = drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(got.len(), 2);
        let ft = NetParams::default().frame_time_ms(1000);
        let dt = (got[1].0 - got[0].0).as_ms();
        // Receiver CPU also serializes (0.03 each), so the gap is at
        // least the larger of frame time and recv cost.
        assert!(dt >= ft.max(0.03) - 1e-9, "gap {dt} < {ft}");
    }

    #[test]
    fn self_send_skips_the_hub() {
        let mut net = cluster(2);
        net.send(HostId(0), HostId(0), MsgClass::App, 100, 5);
        let got = drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(got.len(), 1);
        assert!(
            (got[0].0.as_ms() - 0.03).abs() < 1e-9,
            "loopback pays recv only"
        );
    }

    #[test]
    fn crashed_host_sends_and_receives_nothing() {
        let mut net = cluster(3);
        net.crash_host(HostId(1));
        net.send(HostId(1), HostId(0), MsgClass::App, 100, 1); // dropped
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 2); // dropped at recv
        net.send(HostId(0), HostId(2), MsgClass::App, 100, 3); // delivered
        let got = drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 3);
    }

    #[test]
    fn charge_delays_subsequent_deliveries() {
        let mut net = cluster(2);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 1);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 2);
        let d1 = net.advance(SimTime::from_secs(1.0)).expect("first");
        let t1 = match d1 {
            Delivery::Message { at, .. } => at,
            _ => panic!(),
        };
        // Handler of message 1 burns 0.5 ms on host 1.
        net.charge(HostId(1), 0.5);
        let d2 = net.advance(SimTime::from_secs(1.0)).expect("second");
        let t2 = match d2 {
            Delivery::Message { at, .. } => at,
            _ => panic!(),
        };
        assert!((t2 - t1).as_ms() >= 0.5, "second delivery delayed by work");
    }

    #[test]
    fn precise_timer_fires_near_deadline() {
        let mut net = cluster(1);
        net.set_timer(HostId(0), SimDuration::from_ms(5.0), TimerKind::Precise, 42);
        match net.advance(SimTime::from_secs(1.0)) {
            Some(Delivery::Timer { at, host, token }) => {
                assert_eq!(host, HostId(0));
                assert_eq!(token, 42);
                let lag = at.as_ms() - 5.0;
                assert!((0.0..0.06).contains(&lag), "precise lag {lag}");
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }

    #[test]
    fn coarse_timer_is_quantized_to_the_tick() {
        let mut net = cluster(1);
        // A 0.7 ms sleep on a 10 ms tick wakes between 10 and 20 ms.
        net.set_timer(HostId(0), SimDuration::from_ms(0.7), TimerKind::Coarse, 1);
        match net.advance(SimTime::from_secs(1.0)) {
            Some(Delivery::Timer { at, .. }) => {
                let t = at.as_ms();
                assert!((10.0..=20.0).contains(&t), "coarse wake at {t}");
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut net = cluster(1);
        let id = net.set_timer(HostId(0), SimDuration::from_ms(1.0), TimerKind::Precise, 1);
        net.cancel_timer(id);
        assert!(net.advance(SimTime::from_secs(1.0)).is_none());
    }

    #[test]
    fn heartbeats_batch_under_nagle() {
        let mut net: ClusterNet<u32> =
            ClusterNet::new(2, nagle_params(), quiet_host(), SimRng::new(9));
        // First heartbeat goes out immediately; the next ones are held
        // until the delayed-ack flush (~35-45 ms).
        for k in 0..4 {
            net.send(HostId(0), HostId(1), MsgClass::Heartbeat, 100, k);
        }
        let got = drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(got.len(), 4);
        let t0 = got[0].0.as_ms();
        assert!(t0 < 1.0, "first heartbeat unimpeded, at {t0}");
        let t1 = got[1].0.as_ms();
        assert!(
            (35.0..=47.0).contains(&(t1 - t0)),
            "second heartbeat released by the delayed-ack flush: {}",
            t1 - t0
        );
        // The batch (2,3,4) is released together.
        assert!(got[3].0.as_ms() - t1 < 1.0);
    }

    #[test]
    fn app_message_flushes_pending_heartbeats() {
        let mut net: ClusterNet<u32> =
            ClusterNet::new(2, nagle_params(), quiet_host(), SimRng::new(9));
        net.send(HostId(0), HostId(1), MsgClass::Heartbeat, 100, 0);
        net.send(HostId(0), HostId(1), MsgClass::Heartbeat, 100, 1); // held
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 2); // flushes
        let got = drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(got.len(), 3);
        // All three arrive quickly; heartbeat 1 precedes the app message.
        assert!(
            got[2].0.as_ms() < 2.0,
            "no 40 ms stall: {}",
            got[2].0.as_ms()
        );
        let payloads: Vec<u32> = got.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, vec![0, 1, 2]);
    }

    #[test]
    fn gc_pause_delays_timers_and_work() {
        let mut params = quiet_host();
        params.gc_enabled = true;
        params.gc_interval = Dist::Det(5.0);
        params.gc_duration = Dist::Det(20.0);
        let mut net: ClusterNet<u32> =
            ClusterNet::new(1, NetParams::default(), params, SimRng::new(1));
        // Timer nominally at 6 ms lands inside the 5-25 ms pause.
        net.set_timer(HostId(0), SimDuration::from_ms(6.0), TimerKind::Precise, 9);
        match net.advance(SimTime::from_ms(100.0)) {
            Some(Delivery::Timer { at, .. }) => {
                let t = at.as_ms();
                assert!(
                    (24.9..=25.2).contains(&t),
                    "timer deferred to pause end: {t}"
                );
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }

    #[test]
    fn handler_window_orders_jobs_ahead_of_backlog() {
        let mut net = cluster(2);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 1);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 2);
        let _first = net.advance(SimTime::from_secs(1.0)).expect("first");
        // Handler for message 1: bill work, then send a reply. Both must
        // precede the queued receive of message 2 on host 1's CPU.
        net.begin_handler(HostId(1));
        net.charge(HostId(1), 0.2);
        net.send(HostId(1), HostId(0), MsgClass::App, 100, 99);
        net.end_handler();
        let mut deliveries = Vec::new();
        while let Some(Delivery::Message {
            at, to, payload, ..
        }) = net.advance(SimTime::from_secs(1.0))
        {
            deliveries.push((at.as_ms(), to, payload));
        }
        // The reply (to host 0) must not wait behind message 2's receive
        // processing plus anything else: it leaves right after the work.
        let reply = deliveries.iter().find(|d| d.2 == 99).expect("reply");
        let second = deliveries.iter().find(|d| d.2 == 2).expect("msg2");
        assert!(
            reply.0 < second.0 + 0.2,
            "reply at {} should not be starved by backlog at {}",
            reply.0,
            second.0
        );
    }

    #[test]
    fn message_counters_track_traffic() {
        let mut net = cluster(2);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 1);
        net.send(HostId(0), HostId(1), MsgClass::App, 100, 2);
        drain(&mut net, SimTime::from_secs(1.0));
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.messages_delivered(), 2);
    }
}
