//! Parameters of the simulated cluster.
//!
//! Defaults are calibrated (see `EXPERIMENTS.md`) so that the measured
//! unicast end-to-end delay distribution reproduces the bimodal fit of
//! the paper's Fig. 6 — `U[0.1, 0.13]` ms with probability ≈ 0.8 and a
//! `U[~0.145, ~0.35]` ms tail — and so that the class-1 consensus
//! latency lands in the paper's 1–3.3 ms band for 3–11 processes.

use ctsim_stoch::Dist;

/// Identifies a host (machine) in the cluster. Process `i` of the
/// consensus algorithm runs on host `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Traffic class of a message; decides Nagle treatment and receive cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Protocol messages of the algorithm under study. Sent with
    /// piggybacked acknowledgements (no Nagle stall) and flushing any
    /// pending heartbeats on the same connection.
    App,
    /// Failure-detector heartbeats: small one-way writes subject to the
    /// Nagle / delayed-ACK batching of an idle TCP connection.
    Heartbeat,
}

/// Network-wide parameters (the hub and TCP behaviour).
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Medium bandwidth in Mbit/s (100 for the paper's 100Base-TX hub).
    pub bandwidth_mbps: f64,
    /// Transport+network header bytes added to every payload (TCP/IP).
    pub header_bytes: u32,
    /// Link-layer overhead per frame: Ethernet header + preamble + IPG.
    pub frame_overhead_bytes: u32,
    /// Minimum Ethernet frame size (payload+headers), 64 bytes.
    pub min_frame_bytes: u32,
    /// Whether heartbeat-class traffic is subject to Nagle batching.
    /// Off by default: the measured framework sets `TCP_NODELAY` (the
    /// paper's sub-12 ms mistake durations in Fig. 8b are only possible
    /// without delayed-ack stalls); the mechanism is kept for ablations.
    pub nagle_on_heartbeats: bool,
    /// Delayed-ACK return time: how long a one-way TCP stream stalls
    /// before the receiver's ack releases the next small write (~40 ms
    /// on Linux 2.2).
    pub delayed_ack: Dist,
}

impl Default for NetParams {
    fn default() -> Self {
        Self {
            bandwidth_mbps: 100.0,
            header_bytes: 40,
            frame_overhead_bytes: 38,
            min_frame_bytes: 64,
            nagle_on_heartbeats: false,
            delayed_ack: Dist::Uniform { lo: 35.0, hi: 45.0 },
        }
    }
}

impl NetParams {
    /// Wire occupancy of one message with `payload` bytes, in ms.
    pub fn frame_time_ms(&self, payload: u32) -> f64 {
        let on_wire = (payload + self.header_bytes + self.frame_overhead_bytes)
            .max(self.min_frame_bytes + self.frame_overhead_bytes);
        (on_wire as f64 * 8.0) / (self.bandwidth_mbps * 1e3)
    }
}

/// Per-host parameters (stack costs and OS/JVM jitter). All times ms.
#[derive(Debug, Clone)]
pub struct HostParams {
    /// CPU cost of pushing one message through the send path
    /// (syscall + TCP/IP stack + serialization).
    pub send_cost: Dist,
    /// CPU cost of the receive path up to handing the message to the
    /// application (interrupt + stack + deserialization).
    pub recv_cost: Dist,
    /// Probability that a message receive is hit by an extra scheduling
    /// delay (the slow mode of the paper's bimodal Fig. 6 fit).
    pub recv_tail_prob: f64,
    /// The extra delay when it happens.
    pub recv_tail: Dist,
    /// Interval between JVM stop-the-world pauses.
    pub gc_interval: Dist,
    /// Duration of one pause.
    pub gc_duration: Dist,
    /// Whether pauses are simulated at all.
    pub gc_enabled: bool,
    /// Scheduler tick for coarse timers (Linux 2.2: 10 ms).
    pub timer_granularity: f64,
    /// Extra wake-up lateness of a coarse timer beyond quantization,
    /// as a fraction of the granularity drawn uniformly: a sleeping
    /// thread wakes between `ceil(d/g)·g` and `ceil(d/g)·g + g`.
    pub timer_extra: Dist,
    /// Wake-up lateness of precise (busy-wait / native clock) timers.
    pub precise_timer_jitter: Dist,
}

impl Default for HostParams {
    fn default() -> Self {
        Self {
            send_cost: Dist::Uniform {
                lo: 0.050,
                hi: 0.070,
            },
            recv_cost: Dist::Uniform {
                lo: 0.025,
                hi: 0.038,
            },
            recv_tail_prob: 0.2,
            recv_tail: Dist::Uniform {
                lo: 0.045,
                hi: 0.230,
            },
            gc_interval: Dist::Exp { mean: 3000.0 },
            gc_duration: Dist::Uniform { lo: 8.0, hi: 25.0 },
            gc_enabled: true,
            timer_granularity: 10.0,
            timer_extra: Dist::Uniform { lo: 0.0, hi: 10.0 },
            precise_timer_jitter: Dist::Uniform { lo: 0.0, hi: 0.05 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_time_of_typical_message() {
        let p = NetParams::default();
        // ~100-byte payload + 40 header + 38 overhead = 178 bytes
        // -> 178*8/100e3 ms = 0.014 ms.
        let t = p.frame_time_ms(100);
        assert!((t - 0.014_24).abs() < 1e-6, "frame time {t}");
    }

    #[test]
    fn frame_time_respects_minimum() {
        let p = NetParams::default();
        // 1-byte payload is padded to the 64-byte minimum + overhead.
        let t = p.frame_time_ms(1);
        let expect = (64.0 + 38.0) * 8.0 / 100e3;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn frame_time_scales_with_bandwidth() {
        let mut p = NetParams::default();
        let t100 = p.frame_time_ms(1000);
        p.bandwidth_mbps = 10.0;
        let t10 = p.frame_time_ms(1000);
        assert!((t10 / t100 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn default_unicast_path_lands_in_fig6_band() {
        // send + frame + recv typical ≈ 0.06 + 0.014 + 0.03 ≈ 0.105 ms:
        // inside the paper's fast mode U[0.10, 0.13].
        let h = HostParams::default();
        let n = NetParams::default();
        let typical = h.send_cost.mean() + n.frame_time_ms(100) + h.recv_cost.mean();
        assert!((0.09..=0.14).contains(&typical), "typical e2e {typical}");
    }
}
