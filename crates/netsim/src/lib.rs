//! Simulated cluster substrate: hosts, CPUs, and a shared-hub Ethernet.
//!
//! The DSN 2002 paper ran its measurements on 12 PCs connected by a
//! simplex 100Base-TX Ethernet **hub** (a single collision domain), with
//! the algorithms in Java over TCP/IP on Linux 2.2. This crate is the
//! discrete-event substitute for that cluster. It models, explicitly and
//! per the paper's own observations:
//!
//! * **CPU contention** — each host has one CPU; protocol-stack send and
//!   receive costs are FIFO jobs on it (the paper: "the CPUs may limit
//!   performance when a process has to receive information from a lot of
//!   other processes"),
//! * **network contention** — one shared medium transmits one frame at a
//!   time (the paper: "only one process can use this resource ... at any
//!   given point in time"),
//! * **handler work billing** — protocol handlers charge CPU time for
//!   the work a message triggers ([`ClusterNet::charge`]); this is the
//!   Java-dispatch cost that dominates consensus latency on the real
//!   cluster but not the raw ping delay,
//! * **OS timer granularity** — Linux 2.2 had a 10 ms scheduling
//!   quantum; coarse timers ([`TimerKind::Coarse`]) are quantized the way
//!   `sleep()` was, which the paper invokes to explain the latency peak
//!   at `T = 10 ms` in Fig. 9,
//! * **stop-the-world pauses** — JVM garbage collection stalls a whole
//!   host for tens of ms at random times; these produce the rare long
//!   heartbeat gaps behind the mistake-recurrence cliff of Fig. 8,
//! * **Nagle / delayed-ACK batching** — heartbeat streams are one-way
//!   small writes on idle TCP connections, so consecutive heartbeats
//!   coalesce into ~40 ms batches; application messages flush the queue
//!   (piggybacking). This produces the 30–40 ms heartbeat-gap mass that
//!   makes the failure-detector QoS collapse below `T ≈ 40 ms`.
//!
//! The crate is payload-generic: it moves opaque `P` values from sender
//! to receiver and never inspects them.

pub mod cluster;
pub mod params;

pub use cluster::{ClusterNet, Delivery, TimerId, TimerKind};
pub use params::{HostId, HostParams, MsgClass, NetParams};
