//! Failure-detector quality-of-service metrics (Chen, Toueg, Aguilera,
//! DSN 2000), estimated from suspicion histories exactly as in paper §4.
//!
//! For a pair `(p, q)` — the detector at `p` monitoring `q` — over an
//! experiment of duration `T_exp`, with `T_S` the total time spent
//! suspecting, `n_TS` trust→suspect transitions and `n_ST`
//! suspect→trust transitions, the paper estimates:
//!
//! ```text
//! T_M / T_MR = T_S / T_exp        and
//! T_exp      = (n_TS + n_ST)/2 · T_MR
//! ```
//!
//! which solve to `T_MR = 2·T_exp/(n_TS+n_ST)` and
//! `T_M = 2·T_S/(n_TS+n_ST)`. The per-pair values are then averaged
//! over all pairs.

use ctsim_des::SimTime;

/// A pair's suspicion history over an observation window.
#[derive(Debug, Clone)]
pub struct PairHistory {
    /// Chronological transitions `(time, new state)`; `true` means the
    /// monitor started suspecting.
    pub transitions: Vec<(SimTime, bool)>,
    /// Start of the observation window.
    pub start: SimTime,
    /// End of the observation window.
    pub end: SimTime,
    /// Suspicion state at `start`.
    pub initially_suspected: bool,
}

/// Per-pair QoS estimates (ms), per the paper's equations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairQos {
    /// Mistake recurrence time `T_MR`; infinite when no mistake occurred.
    pub t_mr: f64,
    /// Mistake duration `T_M`; zero when no mistake occurred.
    pub t_m: f64,
    /// Trust→suspect transitions observed.
    pub n_ts: u64,
    /// Suspect→trust transitions observed.
    pub n_st: u64,
    /// Total suspected time within the window (ms).
    pub t_s: f64,
}

/// Estimates the Chen et al. metrics for one monitored pair.
///
/// # Panics
/// Panics if the window is empty (`end <= start`) or transitions are out
/// of chronological order.
pub fn estimate_pair_qos(h: &PairHistory) -> PairQos {
    assert!(h.end > h.start, "empty observation window");
    let t_exp = (h.end - h.start).as_ms();
    let mut suspected = h.initially_suspected;
    let mut last = h.start;
    let mut t_s = 0.0;
    let mut n_ts = 0u64;
    let mut n_st = 0u64;
    for &(t, s) in &h.transitions {
        assert!(t >= last, "history not chronological");
        if t > h.end {
            break;
        }
        if s == suspected {
            continue; // duplicate transition, ignore
        }
        if suspected {
            t_s += (t - last).as_ms();
        }
        if s {
            n_ts += 1;
        } else {
            n_st += 1;
        }
        suspected = s;
        last = t;
    }
    if suspected {
        t_s += (h.end - last).as_ms();
    }
    let denom = (n_ts + n_st) as f64;
    if denom == 0.0 {
        PairQos {
            t_mr: f64::INFINITY,
            t_m: if h.initially_suspected { t_exp } else { 0.0 },
            n_ts,
            n_st,
            t_s,
        }
    } else {
        PairQos {
            t_mr: 2.0 * t_exp / denom,
            t_m: 2.0 * t_s / denom,
            n_ts,
            n_st,
            t_s,
        }
    }
}

/// System-wide QoS: the per-pair values averaged over all pairs, as the
/// paper does ("we obtain the QoS metrics … by averaging over the values
/// for all pairs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSummary {
    /// Average mistake recurrence time (ms); infinite if *no* pair ever
    /// made a mistake.
    pub t_mr: f64,
    /// Average mistake duration (ms).
    pub t_m: f64,
    /// Number of pairs that made at least one mistake.
    pub pairs_with_mistakes: usize,
    /// Total pairs considered.
    pub pairs: usize,
}

/// Averages per-pair estimates.
///
/// Pairs without any mistake contribute `T_exp`-capped recurrence
/// times is a modelling choice the paper leaves open; following the
/// spirit of its footnote ("we do not need to determine T_MR precisely
/// if T_MR is large"), pairs with no transitions are excluded from the
/// `T_MR`/`T_M` averages but counted in `pairs`.
pub fn aggregate_qos(pairs: &[PairQos]) -> QosSummary {
    let with: Vec<&PairQos> = pairs.iter().filter(|p| p.n_ts + p.n_st > 0).collect();
    if with.is_empty() {
        return QosSummary {
            t_mr: f64::INFINITY,
            t_m: 0.0,
            pairs_with_mistakes: 0,
            pairs: pairs.len(),
        };
    }
    let t_mr = with.iter().map(|p| p.t_mr).sum::<f64>() / with.len() as f64;
    let t_m = with.iter().map(|p| p.t_m).sum::<f64>() / with.len() as f64;
    QosSummary {
        t_mr,
        t_m,
        pairs_with_mistakes: with.len(),
        pairs: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn no_transitions_means_no_mistakes() {
        let q = estimate_pair_qos(&PairHistory {
            transitions: vec![],
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: false,
        });
        assert!(q.t_mr.is_infinite());
        assert_eq!(q.t_m, 0.0);
        assert_eq!(q.t_s, 0.0);
    }

    #[test]
    fn single_mistake_cycle_recovers_parameters() {
        // Suspected during [100, 130): T_S = 30, one TS + one ST.
        // T_MR = 2*1000/2 = 1000; T_M = 2*30/2 = 30.
        let q = estimate_pair_qos(&PairHistory {
            transitions: vec![(t(100.0), true), (t(130.0), false)],
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: false,
        });
        assert!((q.t_mr - 1000.0).abs() < 1e-9);
        assert!((q.t_m - 30.0).abs() < 1e-9);
        assert_eq!((q.n_ts, q.n_st), (1, 1));
        assert!((q.t_s - 30.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_mistakes_estimate_the_cycle() {
        // Mistake every 100 ms lasting 20 ms, for 10 cycles in 1000 ms.
        let mut tr = Vec::new();
        for k in 0..10 {
            let base = 100.0 * k as f64;
            tr.push((t(base + 50.0), true));
            tr.push((t(base + 70.0), false));
        }
        let q = estimate_pair_qos(&PairHistory {
            transitions: tr,
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: false,
        });
        assert!((q.t_mr - 100.0).abs() < 1e-9, "T_MR {}", q.t_mr);
        assert!((q.t_m - 20.0).abs() < 1e-9, "T_M {}", q.t_m);
    }

    #[test]
    fn open_suspicion_at_window_end_counts_into_t_s() {
        let q = estimate_pair_qos(&PairHistory {
            transitions: vec![(t(900.0), true)],
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: false,
        });
        assert!((q.t_s - 100.0).abs() < 1e-9);
        // One transition: T_MR = 2*1000/1 = 2000, T_M = 2*100/1 = 200.
        assert!((q.t_mr - 2000.0).abs() < 1e-9);
        assert!((q.t_m - 200.0).abs() < 1e-9);
    }

    #[test]
    fn initially_suspected_window_is_handled() {
        // Suspected [0, 250), then clean.
        let q = estimate_pair_qos(&PairHistory {
            transitions: vec![(t(250.0), false)],
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: true,
        });
        assert!((q.t_s - 250.0).abs() < 1e-9);
        assert_eq!((q.n_ts, q.n_st), (0, 1));
    }

    #[test]
    fn duplicate_transitions_are_ignored() {
        let q = estimate_pair_qos(&PairHistory {
            transitions: vec![(t(100.0), true), (t(110.0), true), (t(130.0), false)],
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: false,
        });
        assert_eq!((q.n_ts, q.n_st), (1, 1));
        assert!((q.t_s - 30.0).abs() < 1e-9);
    }

    #[test]
    fn transitions_after_window_end_are_dropped() {
        let q = estimate_pair_qos(&PairHistory {
            transitions: vec![(t(100.0), true), (t(130.0), false), (t(2000.0), true)],
            start: t(0.0),
            end: t(1000.0),
            initially_suspected: false,
        });
        assert_eq!((q.n_ts, q.n_st), (1, 1));
    }

    #[test]
    fn aggregate_averages_only_pairs_with_mistakes() {
        let a = PairQos {
            t_mr: 100.0,
            t_m: 10.0,
            n_ts: 5,
            n_st: 5,
            t_s: 50.0,
        };
        let b = PairQos {
            t_mr: 300.0,
            t_m: 30.0,
            n_ts: 3,
            n_st: 3,
            t_s: 90.0,
        };
        let clean = PairQos {
            t_mr: f64::INFINITY,
            t_m: 0.0,
            n_ts: 0,
            n_st: 0,
            t_s: 0.0,
        };
        let s = aggregate_qos(&[a, b, clean]);
        assert!((s.t_mr - 200.0).abs() < 1e-9);
        assert!((s.t_m - 20.0).abs() < 1e-9);
        assert_eq!(s.pairs_with_mistakes, 2);
        assert_eq!(s.pairs, 3);
    }

    #[test]
    fn aggregate_of_clean_system_is_infinite_recurrence() {
        let clean = PairQos {
            t_mr: f64::INFINITY,
            t_m: 0.0,
            n_ts: 0,
            n_st: 0,
            t_s: 0.0,
        };
        let s = aggregate_qos(&[clean; 6]);
        assert!(s.t_mr.is_infinite());
        assert_eq!(s.pairs_with_mistakes, 0);
    }

    #[test]
    #[should_panic(expected = "empty observation window")]
    fn empty_window_panics() {
        let _ = estimate_pair_qos(&PairHistory {
            transitions: vec![],
            start: t(5.0),
            end: t(5.0),
            initially_suspected: false,
        });
    }
}
