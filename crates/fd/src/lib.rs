//! Failure detection: the paper's push-style heartbeat detector, an
//! oracle detector for controlled run classes, and the Chen–Toueg–
//! Aguilera quality-of-service metrics.
//!
//! The heartbeat algorithm (paper §2.2, Fig. 1): every process sends a
//! heartbeat to all others every `T_h`; process `p` starts suspecting
//! `q` when no message (heartbeat *or* application message) arrived from
//! `q` for longer than the timeout `T`, and stops suspecting upon the
//! next message from `q`.
//!
//! Run classes 1 and 2 of the paper use idealized failure detectors
//! ("complete and accurate"): [`OracleFd`] provides those. Class 3 uses
//! the real [`HeartbeatFd`], whose histories feed the QoS estimation of
//! [`qos`] — mistake recurrence time `T_MR` and mistake duration `T_M` —
//! exactly with the two equations of paper §4.

pub mod heartbeat;
pub mod oracle;
pub mod qos;

pub use heartbeat::{FdParams, HeartbeatFd};
pub use oracle::OracleFd;
pub use qos::{aggregate_qos, estimate_pair_qos, PairHistory, PairQos, QosSummary};

use ctsim_neko::{Ctx, ProcessId};

/// A suspicion-state change reported by a failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEvent {
    /// The monitored process.
    pub target: ProcessId,
    /// `true` = started suspecting, `false` = stopped suspecting.
    pub suspected: bool,
}

/// The interface consensus (or any client protocol) uses to query and
/// drive a failure-detector module.
///
/// The owner [`ctsim_neko::Node`] must forward lifecycle events:
/// `on_start` once, `note_alive` on **every** message received (the
/// paper's detector treats any message as a liveness proof), and
/// `on_timer` for timer tokens the detector owns.
pub trait FailureDetector<M> {
    /// Initializes the detector (heartbeat loop, timeout timers).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);
    /// A message (of any kind) from `from` was received.
    fn note_alive(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId);
    /// Offers a timer token; returns `true` if the detector consumed it.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) -> bool;
    /// Is `q` currently suspected?
    fn is_suspected(&self, q: ProcessId) -> bool;
    /// Drains suspicion-state changes since the last call.
    fn drain_events(&mut self) -> Vec<FdEvent>;
}

#[cfg(test)]
mod tests {
    // Cross-module integration tests live in `heartbeat` and the
    // workspace-level `tests/` directory.
}
