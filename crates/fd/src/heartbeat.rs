//! The push-style heartbeat failure detector of paper §2.2.
//!
//! Parameterized by the heartbeat period `T_h` and the timeout `T`.
//! Every `T_h` the process sends a heartbeat to all others; the detector
//! starts suspecting `q` when *no* message from `q` (heartbeat or
//! application) arrived for longer than `T`, and trusts `q` again upon
//! the next message. The paper fixes `T_h = 0.7·T` in all experiments.
//!
//! Heartbeat *sending* runs on the simulated host's **coarse timers**
//! (thread sleeps with the 10 ms Linux 2.2 tick), so the effective
//! heartbeat period is `ceil(T_h / 10ms) · 10ms + U[0, 10ms]` — the
//! quantization whose crossover with `T` produces the paper's Fig. 8
//! cliff between `T = 30` and `T = 40` ms. Timeout *checking* uses
//! precise timers (the paper built a 1 µs native-code clock), so
//! suspicions start promptly once the silence exceeds `T`.
//!
//! Every suspicion-state transition is recorded with its timestamp; the
//! histories feed [`crate::qos`].

use ctsim_des::{SimDuration, SimTime};
use ctsim_neko::{Ctx, ProcessId, TimerKind};

use crate::{FailureDetector, FdEvent};

/// Timer-token namespace: the heartbeat loop.
const TOKEN_HB_LOOP: u64 = 1 << 40;
/// Timer-token namespace: per-target timeout checks.
const TOKEN_TIMEOUT_BASE: u64 = 1 << 41;

/// Heartbeat failure-detection parameters (ms).
#[derive(Debug, Clone, Copy)]
pub struct FdParams {
    /// The timeout `T`: silence longer than this raises a suspicion.
    pub timeout: f64,
    /// The heartbeat period `T_h` (the paper uses `0.7·T`).
    pub heartbeat_period: f64,
}

impl FdParams {
    /// The paper's standard setting: `T_h = 0.7·T`.
    pub fn with_timeout(timeout: f64) -> Self {
        Self {
            timeout,
            heartbeat_period: 0.7 * timeout,
        }
    }
}

/// The heartbeat failure-detector module of one process.
///
/// One instance monitors all `n-1` other processes (the paper describes
/// this as `n-1` conceptual detectors; histories are kept per target).
#[derive(Debug)]
pub struct HeartbeatFd {
    me: ProcessId,
    n: usize,
    params: FdParams,
    /// Local-clock time of the last message seen from each process.
    last_heard: Vec<SimTime>,
    suspected: Vec<bool>,
    events: Vec<FdEvent>,
    /// Per-target transition history: (true time, new suspicion state).
    history: Vec<Vec<(SimTime, bool)>>,
    started: bool,
}

impl HeartbeatFd {
    /// Creates the detector for process `me` of `n`.
    pub fn new(me: ProcessId, n: usize, params: FdParams) -> Self {
        Self {
            me,
            n,
            params,
            last_heard: vec![SimTime::ZERO; n],
            suspected: vec![false; n],
            events: Vec::new(),
            history: vec![Vec::new(); n],
            started: false,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> FdParams {
        self.params
    }

    /// The recorded suspicion-transition history for target `q`:
    /// `(true time, suspected)` pairs in chronological order.
    pub fn history(&self, q: ProcessId) -> &[(SimTime, bool)] {
        &self.history[q.0]
    }

    /// Current suspicion vector (index = process id).
    pub fn suspected_vector(&self) -> &[bool] {
        &self.suspected
    }

    fn transition<M>(&mut self, ctx: &mut Ctx<'_, M>, q: ProcessId, suspected: bool)
    where
        M: Clone,
    {
        if self.suspected[q.0] != suspected {
            self.suspected[q.0] = suspected;
            self.history[q.0].push((ctx.now_true(), suspected));
            self.events.push(FdEvent {
                target: q,
                suspected,
            });
        }
    }
}

impl<M: Clone> FailureDetector<M> for HeartbeatFd {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        debug_assert!(!self.started, "on_start called twice");
        self.started = true;
        let now = ctx.now_local();
        for q in 0..self.n {
            self.last_heard[q] = now;
            if q != self.me.0 {
                // First timeout check one T from now.
                ctx.set_timer(
                    SimDuration::from_ms(self.params.timeout),
                    TimerKind::Precise,
                    TOKEN_TIMEOUT_BASE + q as u64,
                );
            }
        }
        // Heartbeat loop: send immediately, then every T_h.
        for q in 0..self.n {
            if q != self.me.0 {
                ctx.send_heartbeat(ProcessId(q));
            }
        }
        ctx.set_timer(
            SimDuration::from_ms(self.params.heartbeat_period),
            TimerKind::Coarse,
            TOKEN_HB_LOOP,
        );
    }

    fn note_alive(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId) {
        if from == self.me {
            return;
        }
        self.last_heard[from.0] = ctx.now_local();
        self.transition(ctx, from, false);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) -> bool {
        if token == TOKEN_HB_LOOP {
            for q in 0..self.n {
                if q != self.me.0 {
                    ctx.send_heartbeat(ProcessId(q));
                }
            }
            ctx.set_timer(
                SimDuration::from_ms(self.params.heartbeat_period),
                TimerKind::Coarse,
                TOKEN_HB_LOOP,
            );
            return true;
        }
        if token >= TOKEN_TIMEOUT_BASE {
            let q = (token - TOKEN_TIMEOUT_BASE) as usize;
            if q >= self.n {
                return false;
            }
            let now = ctx.now_local();
            let silence = now.saturating_since(self.last_heard[q]).as_ms();
            if silence >= self.params.timeout {
                self.transition(ctx, ProcessId(q), true);
                // Re-check after another T.
                ctx.set_timer(
                    SimDuration::from_ms(self.params.timeout),
                    TimerKind::Precise,
                    token,
                );
            } else {
                // Wake when the current silence could first exceed T.
                let remaining = (self.params.timeout - silence).max(0.01);
                ctx.set_timer(SimDuration::from_ms(remaining), TimerKind::Precise, token);
            }
            return true;
        }
        false
    }

    fn is_suspected(&self, q: ProcessId) -> bool {
        self.suspected[q.0]
    }

    fn drain_events(&mut self) -> Vec<FdEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsim_neko::{Node, NodeConfig, Runtime};
    use ctsim_netsim::{HostParams, NetParams};
    use ctsim_stoch::{Dist, SimRng};

    /// A node that runs only a heartbeat failure detector.
    struct FdOnly {
        fd: HeartbeatFd,
    }

    impl Node<u8> for FdOnly {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            FailureDetector::<u8>::on_start(&mut self.fd, ctx);
        }
        fn on_app_message(&mut self, ctx: &mut Ctx<'_, u8>, from: ProcessId, _m: u8) {
            self.fd.note_alive(ctx, from);
        }
        fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, u8>, from: ProcessId) {
            self.fd.note_alive(ctx, from);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u8>, token: u64) {
            let _ = self.fd.on_timer(ctx, token);
        }
    }

    fn fd_runtime(n: usize, timeout: f64, seed: u64, gc: bool) -> Runtime<u8, FdOnly> {
        let host = HostParams {
            gc_enabled: gc,
            ..HostParams::default()
        };
        Runtime::new(
            n,
            NetParams::default(),
            host,
            NodeConfig {
                handler_cost: Dist::Det(0.01),
                ..NodeConfig::default()
            },
            SimRng::new(seed),
            move |p| FdOnly {
                fd: HeartbeatFd::new(p, n, FdParams::with_timeout(timeout)),
            },
        )
    }

    #[test]
    fn generous_timeout_produces_no_suspicions() {
        // T = 200 ms: far above any batching/pause artifact.
        let mut rt = fd_runtime(3, 200.0, 1, false);
        rt.run_until(ctsim_des::SimTime::from_secs(3.0));
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    rt.node(ProcessId(i)).fd.history(ProcessId(j)).is_empty(),
                    "p{i} wrongly suspected p{j}"
                );
            }
        }
    }

    #[test]
    fn crashed_process_gets_suspected_permanently() {
        let mut rt = fd_runtime(3, 50.0, 2, false);
        rt.crash(ProcessId(2));
        rt.run_until(ctsim_des::SimTime::from_secs(2.0));
        for i in 0..2 {
            let fd = &rt.node(ProcessId(i)).fd;
            assert!(
                FailureDetector::<u8>::is_suspected(fd, ProcessId(2)),
                "p{i} must suspect the crashed p3"
            );
            // Exactly one transition: trust -> suspect, never back.
            let h = fd.history(ProcessId(2));
            assert_eq!(h.len(), 1, "history {h:?}");
            assert!(h[0].1);
            // Detection happened after roughly T (plus tick quantization).
            let td = h[0].0.as_ms();
            assert!(
                (50.0..150.0).contains(&td),
                "detection time {td} vs T=50 + coarse-tick slack"
            );
        }
    }

    #[test]
    fn small_timeout_causes_wrong_suspicions_that_heal() {
        // T = 5 ms is below the 10 ms coarse-tick heartbeat floor, so
        // mistakes must occur, and every mistake must heal (processes
        // are all correct).
        let mut rt = fd_runtime(3, 5.0, 3, false);
        rt.run_until(ctsim_des::SimTime::from_secs(2.0));
        let mut mistakes = 0;
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let h = rt.node(ProcessId(i)).fd.history(ProcessId(j));
                mistakes += h.iter().filter(|(_, s)| *s).count();
                // Transitions must alternate starting with `suspect`.
                for (k, &(_, s)) in h.iter().enumerate() {
                    assert_eq!(s, k % 2 == 0, "non-alternating history {h:?}");
                }
            }
        }
        assert!(mistakes > 10, "expected frequent mistakes, got {mistakes}");
        // Mistakes heal: currently-suspected pairs are transient; after
        // the last heartbeat exchange the final state can be either, but
        // the *number* of suspect and trust transitions differs by ≤ 1.
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let h = rt.node(ProcessId(i)).fd.history(ProcessId(j));
                let ts = h.iter().filter(|(_, s)| *s).count() as i64;
                let st = h.iter().filter(|(_, s)| !*s).count() as i64;
                assert!((ts - st).abs() <= 1);
            }
        }
    }

    #[test]
    fn app_messages_also_reset_the_timeout() {
        // Node 0 stops heartbeating but keeps sending app messages; with
        // app chatter, node 1 must not suspect node 0.
        struct Chatter {
            fd: HeartbeatFd,
            chat: bool,
        }
        impl Node<u8> for Chatter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                if self.chat {
                    // No FD start: this node sends app messages instead,
                    // every 8 ms (below T = 40).
                    ctx.set_timer(SimDuration::from_ms(8.0), TimerKind::Precise, 7);
                } else {
                    FailureDetector::<u8>::on_start(&mut self.fd, ctx);
                }
            }
            fn on_app_message(&mut self, ctx: &mut Ctx<'_, u8>, from: ProcessId, _m: u8) {
                self.fd.note_alive(ctx, from);
            }
            fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, u8>, from: ProcessId) {
                self.fd.note_alive(ctx, from);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u8>, token: u64) {
                if token == 7 {
                    ctx.send(ProcessId(1), 0);
                    ctx.set_timer(SimDuration::from_ms(8.0), TimerKind::Precise, 7);
                } else {
                    let _ = self.fd.on_timer(ctx, token);
                }
            }
        }
        let mut rt = Runtime::new(
            2,
            NetParams::default(),
            HostParams {
                gc_enabled: false,
                ..HostParams::default()
            },
            NodeConfig::default(),
            SimRng::new(5),
            |p| Chatter {
                fd: HeartbeatFd::new(p, 2, FdParams::with_timeout(40.0)),
                chat: p.0 == 0,
            },
        );
        rt.run_until(ctsim_des::SimTime::from_secs(2.0));
        let h = rt.node(ProcessId(1)).fd.history(ProcessId(0));
        assert!(
            h.is_empty(),
            "app traffic must keep the detector quiet, got {h:?}"
        );
    }

    #[test]
    fn events_are_drained_once() {
        let mut rt = fd_runtime(2, 5.0, 8, false);
        rt.run_until(ctsim_des::SimTime::from_secs(1.0));
        let n1: usize = (0..2)
            .map(|i| FailureDetector::<u8>::drain_events(&mut rt.node_mut(ProcessId(i)).fd).len())
            .sum();
        assert!(n1 > 0);
        let n2: usize = (0..2)
            .map(|i| FailureDetector::<u8>::drain_events(&mut rt.node_mut(ProcessId(i)).fd).len())
            .sum();
        assert_eq!(n2, 0, "second drain must be empty");
    }
}
