//! An idealized ("complete and accurate") failure detector for the
//! paper's run classes 1 and 2.
//!
//! Class 1: no process is ever suspected. Class 2: the initially crashed
//! process is suspected forever from the beginning; correct processes
//! are never suspected.

use ctsim_neko::{Ctx, ProcessId};

use crate::{FailureDetector, FdEvent};

/// A failure detector whose output is fixed for the whole run.
#[derive(Debug, Clone)]
pub struct OracleFd {
    suspected: Vec<bool>,
}

impl OracleFd {
    /// An oracle that never suspects anyone (run class 1).
    pub fn accurate(n: usize) -> Self {
        Self {
            suspected: vec![false; n],
        }
    }

    /// An oracle that suspects exactly the given processes from the
    /// start, forever (run class 2).
    pub fn suspecting(n: usize, crashed: &[ProcessId]) -> Self {
        let mut suspected = vec![false; n];
        for p in crashed {
            suspected[p.0] = true;
        }
        Self { suspected }
    }
}

impl<M> FailureDetector<M> for OracleFd {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    fn note_alive(&mut self, _ctx: &mut Ctx<'_, M>, _from: ProcessId) {}

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) -> bool {
        false
    }

    fn is_suspected(&self, q: ProcessId) -> bool {
        self.suspected[q.0]
    }

    fn drain_events(&mut self) -> Vec<FdEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_oracle_suspects_nobody() {
        let fd = OracleFd::accurate(5);
        for i in 0..5 {
            assert!(!FailureDetector::<u8>::is_suspected(&fd, ProcessId(i)));
        }
    }

    #[test]
    fn suspecting_oracle_marks_only_the_crashed() {
        let fd = OracleFd::suspecting(5, &[ProcessId(0), ProcessId(3)]);
        let s: Vec<bool> = (0..5)
            .map(|i| FailureDetector::<u8>::is_suspected(&fd, ProcessId(i)))
            .collect();
        assert_eq!(s, vec![true, false, false, true, false]);
    }

    #[test]
    fn oracle_emits_no_events() {
        let mut fd = OracleFd::suspecting(3, &[ProcessId(1)]);
        assert!(FailureDetector::<u8>::drain_events(&mut fd).is_empty());
    }
}
