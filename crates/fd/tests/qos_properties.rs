//! Property coverage for the Chen-style QoS estimator and the
//! heartbeat detector feeding it.
//!
//! Two families:
//!
//! * **estimator bounds** — for *any* chronological suspicion history,
//!   the paper's `T_MR`/`T_M` estimates obey the structural bounds that
//!   follow from their defining equations (`0 ≤ T_S ≤ T_exp`,
//!   `0 ≤ T_M ≤ T_MR ≤ 2·T_exp` once a mistake occurred);
//! * **determinism** — the heartbeat detector driven by the simulated
//!   runtime produces bit-identical histories and QoS estimates for a
//!   fixed [`SimRng`] seed, the property every replication campaign and
//!   CI comparison in this workspace rests on.

use ctsim_des::SimTime;
use ctsim_fd::{
    aggregate_qos, estimate_pair_qos, FailureDetector, FdParams, HeartbeatFd, PairHistory, PairQos,
};
use ctsim_neko::{Ctx, Node, NodeConfig, ProcessId, Runtime};
use ctsim_netsim::{HostParams, NetParams};
use ctsim_stoch::{Dist, SimRng};
use proptest::prelude::*;

/// A node that runs only a heartbeat failure detector (the same shape
/// the in-crate detector tests use).
struct FdOnly {
    fd: HeartbeatFd,
}

impl Node<u8> for FdOnly {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
        FailureDetector::<u8>::on_start(&mut self.fd, ctx);
    }
    fn on_app_message(&mut self, ctx: &mut Ctx<'_, u8>, from: ProcessId, _m: u8) {
        self.fd.note_alive(ctx, from);
    }
    fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, u8>, from: ProcessId) {
        self.fd.note_alive(ctx, from);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u8>, token: u64) {
        let _ = self.fd.on_timer(ctx, token);
    }
}

const N: usize = 3;
const WINDOW_MS: f64 = 500.0;

/// Runs an `N`-process heartbeat-only system for [`WINDOW_MS`] and
/// returns every ordered pair's transition history plus its QoS
/// estimate, in a fixed pair order.
fn detector_qos(timeout: f64, seed: u64) -> Vec<(Vec<(SimTime, bool)>, PairQos)> {
    let mut rt = Runtime::new(
        N,
        NetParams::default(),
        HostParams::default(),
        NodeConfig {
            handler_cost: Dist::Det(0.01),
            ..NodeConfig::default()
        },
        SimRng::new(seed),
        move |p| FdOnly {
            fd: HeartbeatFd::new(p, N, FdParams::with_timeout(timeout)),
        },
    );
    rt.run_until(SimTime::from_ms(WINDOW_MS));
    let mut out = Vec::new();
    for i in 0..N {
        for j in 0..N {
            if i == j {
                continue;
            }
            let transitions = rt.node(ProcessId(i)).fd.history(ProcessId(j)).to_vec();
            let qos = estimate_pair_qos(&PairHistory {
                transitions: transitions.clone(),
                start: SimTime::ZERO,
                end: SimTime::from_ms(WINDOW_MS),
                initially_suspected: false,
            });
            out.push((transitions, qos));
        }
    }
    out
}

/// The structural bounds every estimate must obey inside a window of
/// `t_exp` ms (they follow directly from the defining equations).
fn assert_bounds(q: &PairQos, t_exp: f64) -> Result<(), TestCaseError> {
    prop_assert!(q.t_s >= 0.0, "negative suspected time {}", q.t_s);
    prop_assert!(q.t_s <= t_exp + 1e-9, "T_S {} beyond window {t_exp}", q.t_s);
    prop_assert!(q.t_m >= 0.0, "negative mistake duration {}", q.t_m);
    if q.n_ts + q.n_st == 0 {
        prop_assert!(q.t_mr.is_infinite(), "no mistakes but finite T_MR");
    } else {
        // T_MR = 2 T_exp / k with k ≥ 1, and T_M ≤ T_MR since T_S ≤ T_exp.
        prop_assert!(
            q.t_mr > 0.0 && q.t_mr <= 2.0 * t_exp + 1e-9,
            "T_MR {}",
            q.t_mr
        );
        prop_assert!(q.t_m <= q.t_mr + 1e-9, "T_M {} > T_MR {}", q.t_m, q.t_mr);
    }
    Ok(())
}

/// Deterministic detector bounds on one concrete run: a timeout below
/// the 10 ms coarse-tick heartbeat floor forces mistakes, and every
/// pair's estimate must respect the structural bounds.
#[test]
fn heartbeat_estimates_respect_bounds() {
    let pairs = detector_qos(5.0, 42);
    let mut mistakes = 0;
    for (transitions, q) in &pairs {
        assert_bounds(q, WINDOW_MS).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            (q.n_ts + q.n_st) as usize,
            transitions.len(),
            "alternating history: every transition is counted"
        );
        mistakes += q.n_ts;
    }
    assert!(mistakes > 0, "T = 5 ms must produce wrong suspicions");
    let summary = aggregate_qos(&pairs.iter().map(|(_, q)| *q).collect::<Vec<_>>());
    assert!(summary.pairs_with_mistakes > 0);
    assert!(
        summary.t_m <= summary.t_mr,
        "averaged T_M {} > averaged T_MR {}",
        summary.t_m,
        summary.t_mr
    );
}

/// A generous timeout over a clean system: no mistakes, infinite
/// recurrence, zero mistake duration — the other edge of the bounds.
#[test]
fn clean_system_reports_infinite_recurrence() {
    let pairs = detector_qos(200.0, 7);
    for (transitions, q) in &pairs {
        assert!(
            transitions.is_empty(),
            "unexpected mistakes {transitions:?}"
        );
        assert!(q.t_mr.is_infinite());
        assert_eq!(q.t_m, 0.0);
        assert_eq!(q.t_s, 0.0);
    }
    let summary = aggregate_qos(&pairs.iter().map(|(_, q)| *q).collect::<Vec<_>>());
    assert!(summary.t_mr.is_infinite());
    assert_eq!(summary.pairs_with_mistakes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The estimator's bounds hold for arbitrary chronological
    /// histories, not just ones a real detector produced — including
    /// duplicate states, an initially-suspected window, and
    /// transitions past the window end.
    #[test]
    fn estimator_bounds_hold_for_random_histories(
        raw in proptest::collection::vec((0.0f64..1200.0, 0u8..2), 0..40),
        initially in 0u8..2,
    ) {
        let mut times: Vec<f64> = raw.iter().map(|&(t, _)| t).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let transitions: Vec<(SimTime, bool)> = times
            .iter()
            .zip(&raw)
            .map(|(&t, &(_, s))| (SimTime::from_ms(t), s == 1))
            .collect();
        let q = estimate_pair_qos(&PairHistory {
            transitions,
            start: SimTime::ZERO,
            end: SimTime::from_ms(1000.0),
            initially_suspected: initially == 1,
        });
        assert_bounds(&q, 1000.0)?;
    }

    /// The detector's output — transition histories and the QoS
    /// estimates derived from them — is bit-for-bit deterministic for
    /// a fixed `SimRng` seed, across both mistake-free and
    /// mistake-heavy timeout regimes.
    #[test]
    fn detector_output_is_deterministic_for_fixed_seed(
        seed in 0u64..1_000_000,
        timeout in 4.0f64..60.0,
    ) {
        let a = detector_qos(timeout, seed);
        let b = detector_qos(timeout, seed);
        prop_assert_eq!(a.len(), b.len());
        for ((ha, qa), (hb, qb)) in a.iter().zip(&b) {
            prop_assert_eq!(ha, hb, "histories diverged for seed {}", seed);
            prop_assert_eq!(qa.t_mr.to_bits(), qb.t_mr.to_bits());
            prop_assert_eq!(qa.t_m.to_bits(), qb.t_m.to_bits());
            prop_assert_eq!(qa.t_s.to_bits(), qb.t_s.to_bits());
            prop_assert_eq!((qa.n_ts, qa.n_st), (qb.n_ts, qb.n_st));
        }
    }
}
