//! Dependency-free telemetry for the analytic pipeline: spans,
//! monotonic counters and gauges, named sample series (solver residual
//! traces), power-of-two histograms, and per-thread event buffers —
//! with exporters for a human-readable run summary, a JSON metrics
//! document, and a chrome://tracing (`trace_event`) file.
//!
//! Like the `crates/compat/` shims, this crate is built for the
//! offline workspace: no `tracing`, no `serde` — the exporters
//! hand-roll their JSON exactly like the bench writer does.
//!
//! # Disabled-mode overhead guarantee
//!
//! Telemetry is **off by default** and must be switched on explicitly
//! with [`enable`]. While disabled, every recording entry point
//! ([`span`], [`instant`], [`counter_add`], [`gauge_set`],
//! [`series_push`], [`hist_record`], [`record_span`]) reduces to **one
//! relaxed atomic load and a predictable branch** — no clock read, no
//! allocation, no lock. Instrumented hot loops additionally guard
//! their argument construction behind [`enabled`] so a disabled build
//! pays nothing for `format!`/`Vec` work either. The CI bench gate
//! (`bench_check`) runs the n = 3 exploration with telemetry disabled
//! and fails on any measurable throughput regression, which keeps this
//! guarantee enforced rather than aspirational.
//!
//! # Capturing a trace
//!
//! ```
//! ctsim_obs::enable();
//! {
//!     let _s = ctsim_obs::span("demo", "work").arg("items", 3u64);
//!     ctsim_obs::counter_add("demo.items", 3);
//!     ctsim_obs::series_push("demo.residual", 1.0, 0.125);
//! }
//! let trace = ctsim_obs::chrome_trace_json(); // load in chrome://tracing
//! let metrics = ctsim_obs::metrics_json();
//! assert!(trace.contains("\"ph\": \"X\""));
//! assert!(metrics.contains("demo.items"));
//! ctsim_obs::disable();
//! ```
//!
//! Spans record on `Drop` as chrome `"ph": "X"` complete events with
//! microsecond timestamps relative to the [`enable`] call; each OS
//! thread gets its own buffer (and `tid`), so recording never contends
//! across workers. Buffers are capped at [`EVENT_CAP_PER_THREAD`]
//! events per thread; overflow is counted in the
//! `obs.dropped_events` metric instead of growing without bound.

use std::borrow::Cow;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events per OS thread; overflow increments the
/// `obs.dropped_events` metric rather than allocating further.
pub const EVENT_CAP_PER_THREAD: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Whether telemetry is currently recording. One relaxed atomic load —
/// the entire disabled-mode cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A recorded event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// An unsigned integer argument.
    U64(u64),
    /// A signed integer argument.
    I64(i64),
    /// A floating-point argument.
    F64(f64),
    /// A string argument.
    Str(String),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::U64(v)
    }
}
impl From<usize> for ArgVal {
    fn from(v: usize) -> Self {
        ArgVal::U64(v as u64)
    }
}
impl From<u32> for ArgVal {
    fn from(v: u32) -> Self {
        ArgVal::U64(v as u64)
    }
}
impl From<i64> for ArgVal {
    fn from(v: i64) -> Self {
        ArgVal::I64(v)
    }
}
impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::F64(v)
    }
}
impl From<&str> for ArgVal {
    fn from(v: &str) -> Self {
        ArgVal::Str(v.to_string())
    }
}
impl From<String> for ArgVal {
    fn from(v: String) -> Self {
        ArgVal::Str(v)
    }
}

type Args = Vec<(&'static str, ArgVal)>;

#[derive(Debug, Clone)]
enum Ev {
    Span {
        cat: &'static str,
        name: Cow<'static, str>,
        t0_us: u64,
        dur_us: u64,
        args: Args,
    },
    Instant {
        cat: &'static str,
        name: Cow<'static, str>,
        t_us: u64,
        args: Args,
    },
}

type ThreadBuf = Arc<Mutex<Vec<Ev>>>;

struct Global {
    epoch: Mutex<Option<Instant>>,
    /// Every thread buffer ever registered (kept alive past thread
    /// exit so export sees the full run).
    registry: Mutex<Vec<(u32, ThreadBuf)>>,
    counters: Mutex<std::collections::BTreeMap<String, u64>>,
    gauges: Mutex<std::collections::BTreeMap<String, f64>>,
    series: Mutex<std::collections::BTreeMap<String, Vec<(f64, f64)>>>,
    hists: Mutex<std::collections::BTreeMap<String, Hist>>,
}

/// A power-of-two-bucket histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones).
#[derive(Debug, Clone, Default)]
pub struct Hist {
    /// Per-bucket sample counts; index = position of the highest set
    /// bit of the sample (0 for samples ≤ 1).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Hist {
    fn record(&mut self, v: u64) {
        let bucket = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        epoch: Mutex::new(None),
        registry: Mutex::new(Vec::new()),
        counters: Mutex::new(Default::default()),
        gauges: Mutex::new(Default::default()),
        series: Mutex::new(Default::default()),
        hists: Mutex::new(Default::default()),
    })
}

/// Switches telemetry on, clearing all previously recorded data and
/// anchoring the trace clock at "now". Timestamps in exported traces
/// are microseconds since this call.
pub fn enable() {
    let g = global();
    *g.epoch.lock().unwrap() = Some(Instant::now());
    for (_, buf) in g.registry.lock().unwrap().iter() {
        buf.lock().unwrap().clear();
    }
    g.counters.lock().unwrap().clear();
    g.gauges.lock().unwrap().clear();
    g.series.lock().unwrap().clear();
    g.hists.lock().unwrap().clear();
    DROPPED.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Switches telemetry off. Recorded data stays available to the
/// exporters until the next [`enable`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Microseconds since the [`enable`] anchor (0 when disabled or never
/// enabled). Use with [`record_span`] to emit batch spans whose
/// boundaries are measured manually.
pub fn now_us() -> u64 {
    if !enabled() {
        return 0;
    }
    match *global().epoch.lock().unwrap() {
        Some(epoch) => epoch.elapsed().as_micros() as u64,
        None => 0,
    }
}

thread_local! {
    static LOCAL: std::cell::OnceCell<(u32, ThreadBuf)> = const { std::cell::OnceCell::new() };
}

fn push_event(ev: Ev) {
    LOCAL.with(|cell| {
        let (_, buf) = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf: ThreadBuf = Arc::new(Mutex::new(Vec::new()));
            global().registry.lock().unwrap().push((tid, buf.clone()));
            (tid, buf)
        });
        let mut b = buf.lock().unwrap();
        if b.len() < EVENT_CAP_PER_THREAD {
            b.push(ev);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// An in-flight span; records a chrome `"ph": "X"` complete event when
/// dropped. Obtain one with [`span`]; attach arguments with
/// [`Span::arg`]. A span created while telemetry is disabled is inert.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    live: bool,
    cat: &'static str,
    name: Cow<'static, str>,
    t0_us: u64,
    args: Args,
}

impl Span {
    /// Attaches a key/value argument (builder style).
    pub fn arg(mut self, key: &'static str, val: impl Into<ArgVal>) -> Self {
        if self.live {
            self.args.push((key, val.into()));
        }
        self
    }

    /// Attaches a key/value argument in place (for args only known at
    /// the end of the span).
    pub fn push_arg(&mut self, key: &'static str, val: impl Into<ArgVal>) {
        if self.live {
            self.args.push((key, val.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live && enabled() {
            let dur_us = now_us().saturating_sub(self.t0_us);
            push_event(Ev::Span {
                cat: self.cat,
                name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                t0_us: self.t0_us,
                dur_us,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// Starts a span in category `cat`. When telemetry is disabled this
/// returns an inert guard without reading the clock.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled() {
        return Span {
            live: false,
            cat,
            name: Cow::Borrowed(""),
            t0_us: 0,
            args: Vec::new(),
        };
    }
    Span {
        live: true,
        cat,
        name: name.into(),
        t0_us: now_us(),
        args: Vec::new(),
    }
}

/// Records a completed span whose boundaries were measured manually
/// (`t0_us` from [`now_us`]) — the batch-span primitive for loops that
/// group many iterations into one event.
pub fn record_span(cat: &'static str, name: impl Into<Cow<'static, str>>, t0_us: u64, args: Args) {
    if !enabled() {
        return;
    }
    let dur_us = now_us().saturating_sub(t0_us);
    push_event(Ev::Span {
        cat,
        name: name.into(),
        t0_us,
        dur_us,
        args,
    });
}

/// Records a zero-duration instant event (rendered as a chrome `"i"`
/// mark), e.g. an arena segment seal or a GMRES restart.
pub fn instant(cat: &'static str, name: impl Into<Cow<'static, str>>, args: Args) {
    if !enabled() {
        return;
    }
    push_event(Ev::Instant {
        cat,
        name: name.into(),
        t_us: now_us(),
        args,
    });
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    *global()
        .counters
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_insert(0) += delta;
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    global()
        .gauges
        .lock()
        .unwrap()
        .insert(name.to_string(), value);
}

/// Appends an `(x, y)` sample to the named series — e.g.
/// `(iteration, residual)` for a solver convergence trace.
pub fn series_push(name: &str, x: f64, y: f64) {
    if !enabled() {
        return;
    }
    global()
        .series
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .push((x, y));
}

/// Records `value` into the named power-of-two histogram — e.g. intern
/// probe lengths or per-shard SpMV nanoseconds.
pub fn hist_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    global()
        .hists
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .record(value);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_args(args: &Args, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\": ");
        match v {
            ArgVal::U64(x) => {
                let _ = write!(out, "{x}");
            }
            ArgVal::I64(x) => {
                let _ = write!(out, "{x}");
            }
            ArgVal::F64(x) => json_f64(*x, out),
            ArgVal::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn collect_events() -> Vec<(u32, Ev)> {
    let mut all = Vec::new();
    for (tid, buf) in global().registry.lock().unwrap().iter() {
        for ev in buf.lock().unwrap().iter() {
            all.push((*tid, ev.clone()));
        }
    }
    all.sort_by_key(|(_, ev)| match ev {
        Ev::Span { t0_us, .. } => *t0_us,
        Ev::Instant { t_us, .. } => *t_us,
    });
    all
}

/// Renders every recorded event as a chrome://tracing `trace_event`
/// JSON document (`{"traceEvents": [...]}`); load the file via the
/// "Load" button of chrome://tracing or <https://ui.perfetto.dev>.
pub fn chrome_trace_json() -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(
        "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"ctsim\"}}",
    );
    for (tid, ev) in collect_events() {
        out.push_str(",\n  ");
        match ev {
            Ev::Span {
                cat,
                name,
                t0_us,
                dur_us,
                args,
            } => {
                out.push_str("{\"name\": \"");
                escape_json(&name, &mut out);
                let _ = write!(
                    out,
                    "\", \"cat\": \"{cat}\", \"ph\": \"X\", \"ts\": {t0_us}, \
                     \"dur\": {dur_us}, \"pid\": 1, \"tid\": {tid}, \"args\": "
                );
                json_args(&args, &mut out);
                out.push('}');
            }
            Ev::Instant {
                cat,
                name,
                t_us,
                args,
            } => {
                out.push_str("{\"name\": \"");
                escape_json(&name, &mut out);
                let _ = write!(
                    out,
                    "\", \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {t_us}, \
                     \"pid\": 1, \"tid\": {tid}, \"args\": "
                );
                json_args(&args, &mut out);
                out.push('}');
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders counters, gauges, series (residual traces), and histograms
/// as one JSON metrics document.
pub fn metrics_json() -> String {
    let g = global();
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (k, v)) in g.counters.lock().unwrap().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(k, &mut out);
        let _ = write!(out, "\": {v}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (k, v)) in g.gauges.lock().unwrap().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(k, &mut out);
        out.push_str("\": ");
        json_f64(*v, &mut out);
    }
    out.push_str("\n  },\n  \"series\": {");
    for (i, (k, pts)) in g.series.lock().unwrap().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(k, &mut out);
        out.push_str("\": [");
        for (j, (x, y)) in pts.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('[');
            json_f64(*x, &mut out);
            out.push_str(", ");
            json_f64(*y, &mut out);
            out.push(']');
        }
        out.push(']');
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (k, h)) in g.hists.lock().unwrap().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(k, &mut out);
        let _ = write!(
            out,
            "\": {{\"pow2_counts\": {:?}, \"total\": {}, \"sum\": {}, \"max\": {}, \"mean\": ",
            h.counts, h.total, h.sum, h.max
        );
        json_f64(h.mean(), &mut out);
        out.push('}');
    }
    let _ = write!(
        out,
        "\n  }},\n  \"dropped_events\": {}\n}}\n",
        DROPPED.load(Ordering::Relaxed)
    );
    out
}

/// Renders a short human-readable run summary: counters, gauges, and
/// histogram/series digests.
pub fn summary() -> String {
    let g = global();
    let mut out = String::from("telemetry summary\n");
    let events: usize = g
        .registry
        .lock()
        .unwrap()
        .iter()
        .map(|(_, b)| b.lock().unwrap().len())
        .sum();
    let _ = writeln!(
        out,
        "  events: {events} ({} dropped at the {} per-thread cap)",
        DROPPED.load(Ordering::Relaxed),
        EVENT_CAP_PER_THREAD
    );
    for (k, v) in g.counters.lock().unwrap().iter() {
        let _ = writeln!(out, "  counter {k} = {v}");
    }
    for (k, v) in g.gauges.lock().unwrap().iter() {
        let _ = writeln!(out, "  gauge   {k} = {v}");
    }
    for (k, pts) in g.series.lock().unwrap().iter() {
        let last = pts.last().map(|&(_, y)| y).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  series  {k}: {} samples, last y = {last:e}",
            pts.len()
        );
    }
    for (k, h) in g.hists.lock().unwrap().iter() {
        let _ = writeln!(
            out,
            "  hist    {k}: n = {}, mean = {:.2}, max = {}",
            h.total,
            h.mean(),
            h.max
        );
    }
    out
}

// ---------------------------------------------------------------------
// Host info
// ---------------------------------------------------------------------

/// Static facts about the machine a run executed on, recorded into
/// bench result files so thread-sweep numbers are interpretable (a
/// single-core container cannot show parallel speedups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical CPU count visible to this process.
    pub logical_cores: usize,
    /// Virtual-memory page size in bytes (0 when undeterminable).
    pub page_size_bytes: u64,
    /// Total physical RAM in bytes (0 when undeterminable).
    pub total_ram_bytes: u64,
}

/// Probes the host: logical cores via `available_parallelism`, page
/// size from the ELF auxiliary vector (`AT_PAGESZ`), total RAM from
/// `/proc/meminfo`. The latter two read 0 on platforms without procfs.
pub fn host_info() -> HostInfo {
    HostInfo {
        logical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        page_size_bytes: page_size(),
        total_ram_bytes: total_ram(),
    }
}

/// `AT_PAGESZ` from `/proc/self/auxv`: pairs of native-endian
/// pointer-size words `(key, value)`, key 6 = page size.
fn page_size() -> u64 {
    const AT_PAGESZ: u64 = 6;
    let Ok(bytes) = std::fs::read("/proc/self/auxv") else {
        return 0;
    };
    let word = std::mem::size_of::<usize>();
    let mut it = bytes.chunks_exact(word);
    while let (Some(k), Some(v)) = (it.next(), it.next()) {
        let key = usize::from_ne_bytes(k.try_into().expect("exact chunk")) as u64;
        if key == AT_PAGESZ {
            return usize::from_ne_bytes(v.try_into().expect("exact chunk")) as u64;
        }
    }
    0
}

/// `MemTotal` from `/proc/meminfo` (reported in kB).
fn total_ram() -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/meminfo") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is global, so tests that toggle it serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        L.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _l = lock();
        disable();
        {
            let _s = span("t", "never").arg("k", 1u64);
        }
        counter_add("t.c", 5);
        gauge_set("t.g", 1.0);
        series_push("t.s", 0.0, 1.0);
        hist_record("t.h", 7);
        enable(); // clears and arms; nothing from above may appear
        let m = metrics_json();
        assert!(!m.contains("t.c"), "{m}");
        assert!(!m.contains("t.s"), "{m}");
        disable();
    }

    #[test]
    fn span_counter_series_hist_round_trip() {
        let _l = lock();
        enable();
        {
            let mut s = span("cat", "unit").arg("n", 42u64);
            s.push_arg("label", "x\"y");
            counter_add("c.events", 2);
            counter_add("c.events", 3);
            gauge_set("g.occ", 0.75);
            series_push("residual", 1.0, 1e-3);
            series_push("residual", 2.0, 1e-6);
            hist_record("probes", 1);
            hist_record("probes", 5);
        }
        instant("cat", "mark", vec![("v", ArgVal::F64(2.5))]);
        let trace = chrome_trace_json();
        assert!(trace.contains("\"name\": \"unit\""), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ph\": \"i\""));
        assert!(trace.contains("x\\\"y"), "escaped quote: {trace}");
        let m = metrics_json();
        assert!(m.contains("\"c.events\": 5"), "{m}");
        assert!(m.contains("\"g.occ\": 0.75"), "{m}");
        assert!(m.contains("[1, 0.001], [2, 0.000001]"), "{m}");
        assert!(m.contains("\"probes\""), "{m}");
        let s = summary();
        assert!(s.contains("counter c.events = 5"), "{s}");
        assert!(s.contains("series  residual: 2 samples"), "{s}");
        disable();
    }

    #[test]
    fn enable_resets_previous_run() {
        let _l = lock();
        enable();
        counter_add("old", 1);
        {
            let _s = span("t", "old-span");
        }
        enable();
        counter_add("new", 1);
        let m = metrics_json();
        assert!(!m.contains("\"old\""), "{m}");
        assert!(m.contains("\"new\": 1"), "{m}");
        assert!(!chrome_trace_json().contains("old-span"));
        disable();
    }

    #[test]
    fn batch_spans_and_threads_record_under_own_tids() {
        let _l = lock();
        enable();
        let t0 = now_us();
        record_span("t", "batch", t0, vec![("iters", ArgVal::U64(64))]);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _sp = span("t", "worker");
                });
            }
        });
        let trace = chrome_trace_json();
        assert!(trace.contains("\"batch\""), "{trace}");
        assert_eq!(trace.matches("\"worker\"").count(), 2, "{trace}");
        disable();
    }

    #[test]
    fn hist_buckets_are_pow2() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 8, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.total, 8);
        assert_eq!(h.max, 1000);
        // 0,1 -> bucket 0; 2 -> 1; 3,4 -> 2; 8 -> 3; 9 -> 4; 1000 -> 10.
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[10], 1);
    }

    #[test]
    fn host_info_is_sane() {
        let h = host_info();
        assert!(h.logical_cores >= 1);
        // On Linux both procfs probes succeed; elsewhere they read 0.
        if cfg!(target_os = "linux") {
            assert!(h.page_size_bytes >= 4096, "{h:?}");
            assert!(h.total_ram_bytes > 0, "{h:?}");
        }
    }

    #[test]
    fn json_escapes_control_chars_and_nonfinite() {
        let mut s = String::new();
        escape_json("a\u{1}\n\"\\", &mut s);
        assert_eq!(s, "a\\u0001\\n\\\"\\\\");
        let mut f = String::new();
        json_f64(f64::NAN, &mut f);
        assert_eq!(f, "null");
    }
}
